//! `suit-cli` — drive the SUIT reproduction from the command line.
//!
//! ```text
//! suit-cli list
//! suit-cli simulate --workload 557.xz --cpu c --strategy fv --offset 97
//! suit-cli simulate --workload Nginx --cpu a --strategy adaptive --insts 2000000000
//! suit-cli profile Nginx --trace-out trace.json --insts 200000000
//! suit-cli validate-trace trace.json
//! suit-cli trace record --workload 502.gcc --out gcc.suittrc --bursts 5000
//! suit-cli trace pack gcc.suittrc gcc.suittrc2
//! suit-cli trace seek gcc.suittrc2 --vtime 1000000
//! suit-cli trace info gcc.suittrc2
//! suit-cli security
//! ```
//!
//! Unknown subcommands and unknown flags print the usage text and exit
//! nonzero — they are never silently ignored.

use std::process::ExitCode;

use suit::core::strategy::StrategyParams;
use suit::core::OperatingStrategy;
use suit::hw::{CpuModel, UndervoltLevel};
use suit::sim::analytic::simulate_emulation;
use suit::sim::engine::{simulate, simulate_telemetry, SimConfig};
use suit::telemetry::{validate_perfetto, Telemetry};
use suit::trace::io::{read_trace, write_trace, TraceMeta};
use suit::trace::{profile, TraceGen};

const USAGE: &str =
    "usage: suit-cli <list|simulate|profile|validate-trace|mix|fleet|trace|analyze|security|scenario|serve|client> [options]\n\
\x20 simulate --workload <name[,name...]|all> [--cpu a|b|c] [--strategy fv|f|v|e|adaptive]\n\
\x20          [--offset 70|97] [--cores N] [--insts N] [--seed N] [--threads N]\n\
\x20 profile <workload> [--trace-out <file>] [--cpu a|b|c] [--strategy fv|f|v|adaptive]\n\
\x20          [--offset 70|97] [--cores N] [--insts N] [--seed N] [--events N] [--threads N]\n\
\x20 validate-trace <file|->          (- reads the trace from stdin)\n\
\x20 mix <office|webserver|hpc|media|all> [--cpu a|b|c] [--insts N] [--threads N]\n\
\x20 fleet [--config <file.json>] [--racks N] [--domains N | --cores N] [--cores-per-domain N]\n\
\x20       [--workload name[,name...]] [--epochs N] [--insts N] [--utilization F]\n\
\x20       [--cpu a|b|c] [--strategy fv|f|v] [--offset 70|97] [--seed N] [--threads N]\n\
\x20       [--event-driven]   (serial component-scheduler driver; same bytes)\n\
\x20 trace record --workload <name> --out <file> [--bursts N] [--seed N]\n\
\x20       [--format v1|v2] [--chunk-bursts N]   (v2 streams into a SUITTRC2 container)\n\
\x20 trace pack <in.suittrc> <out.suittrc2> [--chunk-bursts N]\n\
\x20 trace unpack <in.suittrc2> <out.suittrc>\n\
\x20 trace info <file>                           (SUITTRC1 or SUITTRC2)\n\
\x20 trace seek <file.suittrc2> --vtime N\n\
\x20 scenario <sram|scrooge> [--config <file.json>] [--seed N] [--threads N] [--json]\n\
\x20          (SRAM fault-domain sweep / Scrooge attacker-economics search)\n\
\x20 serve [--addr HOST:PORT] [--threads N] [--queue-depth N] [--deadline-ms N]\n\
\x20       [--cache-entries N] [--cache-bytes N]   (0 disables the result cache)\n\
\x20       [--trace-entries N] [--trace-bytes N]   (bounds the /v1/trace store)\n\
\x20 client <path> [--addr HOST:PORT] [--method GET|POST] [--body <json>|-]\n\
\x20        [--body-file <file>] [--timeout-ms N] [--expect-json] [--etag TAG] [--show-etag]\n\
\x20 --threads N fans workloads out over N workers; results are identical for every N";

fn main() -> ExitCode {
    // `suit-cli ... | head` is normal usage; `println!` panics on EPIPE,
    // so treat a broken pipe as a clean exit instead of a crash.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("Broken pipe"));
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("validate-trace") => cmd_validate_trace(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("security") => cmd_security(&args[1..]),
        Some("scenario") => cmd_scenario(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("mix") => cmd_mix(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some(other) => Err(format!("unknown subcommand '{other}'")),
        None => Err("missing subcommand".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if e.contains("unknown subcommand")
                || e.contains("missing subcommand")
                || e.contains("unknown flag")
                || e.contains("unexpected argument")
                || e.contains("--threads")
                || e.contains("--addr")
                || e.contains("--queue-depth")
                || e.contains("expected sram or scrooge")
            {
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), String>;

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The first token that is neither a `--flag` nor a flag's value.
/// Only meaningful after [`check_args`] has accepted the argument list
/// (every `--flag` a subcommand takes consumes a value).
fn first_positional(args: &[String]) -> Option<String> {
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            return Some(args[i].clone());
        }
    }
    None
}

/// Parses `--threads N` into an executor policy. Absent means
/// sequential; `0` or junk is rejected with the parse error (which names
/// the flag, so `main` prints the usage text).
fn parse_threads(args: &[String]) -> Result<suit::exec::Threads, String> {
    match opt(args, "--threads") {
        Some(v) => suit::exec::Threads::parse(&v),
        None => Ok(suit::exec::Threads::Fixed(1)),
    }
}

/// Strict argument validation: every `--flag` must be in `value_flags`
/// (which consume the following token) or `bool_flags`, and at most
/// `max_positionals` non-flag tokens may remain. Anything else is an
/// error, so typos fail loudly instead of being silently ignored.
fn check_args(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
    max_positionals: usize,
) -> CliResult {
    let mut positionals = 0;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            if value_flags.contains(&a.as_str()) {
                i += 2;
            } else if bool_flags.contains(&a.as_str()) {
                i += 1;
            } else {
                return Err(format!("unknown flag '{a}'"));
            }
        } else {
            positionals += 1;
            if positionals > max_positionals {
                return Err(format!("unexpected argument '{a}'"));
            }
            i += 1;
        }
    }
    Ok(())
}

fn cmd_list(args: &[String]) -> CliResult {
    check_args(args, &[], &[], 0)?;
    println!("Workloads (25):");
    for p in profile::all() {
        println!(
            "  {:<16} {:?}  ipc {:.1}  target residency {:>5.1}%",
            p.name,
            p.suite,
            p.ipc,
            p.target_residency * 100.0
        );
    }
    println!("\nCPUs: a = i9-9900K (shared domain), b = Ryzen 7 7700X (per-core freq), c = Xeon 4208 (per-core p-states)");
    println!("Strategies: fv (default), f, v, e (emulation), adaptive (Section 6.8)");
    Ok(())
}

fn parse_cpu(s: Option<String>) -> Result<CpuModel, String> {
    match s.as_deref().unwrap_or("c") {
        "a" => Ok(CpuModel::i9_9900k()),
        "b" => Ok(CpuModel::ryzen_7700x()),
        "c" => Ok(CpuModel::xeon_4208()),
        other => Err(format!("unknown CPU '{other}' (expected a, b or c)")),
    }
}

fn parse_level(s: Option<String>) -> Result<UndervoltLevel, String> {
    match s.as_deref().unwrap_or("97") {
        "70" | "-70" => Ok(UndervoltLevel::Mv70),
        "97" | "-97" => Ok(UndervoltLevel::Mv97),
        other => Err(format!("unknown offset '{other}' (expected 70 or 97)")),
    }
}

fn cmd_simulate(args: &[String]) -> CliResult {
    check_args(
        args,
        &[
            "--workload",
            "--cpu",
            "--strategy",
            "--offset",
            "--cores",
            "--insts",
            "--seed",
            "--threads",
        ],
        &[],
        0,
    )?;
    let name = opt(args, "--workload")
        .ok_or("missing --workload <name[,name...]|all> (see `suit-cli list`)")?;
    // A comma list or `all` fans out over the executor; a single name
    // degenerates to one job on one worker.
    let profiles: Vec<&profile::WorkloadProfile> = if name == "all" {
        profile::all().iter().collect()
    } else {
        name.split(',')
            .map(str::trim)
            .map(|n| profile::by_name(n).ok_or_else(|| format!("unknown workload '{n}'")))
            .collect::<Result<_, _>>()?
    };
    let threads = parse_threads(args)?;
    let cpu = parse_cpu(opt(args, "--cpu"))?;
    let level = parse_level(opt(args, "--offset"))?;
    let cores: usize =
        opt(args, "--cores").map_or(Ok(1), |v| v.parse().map_err(|e| format!("--cores: {e}")))?;
    let insts: Option<u64> = opt(args, "--insts")
        .map(|v| v.parse().map_err(|e| format!("--insts: {e}")))
        .transpose()?;
    if insts == Some(0) {
        return Err("--insts must be at least 1".into());
    }
    let seed: u64 = opt(args, "--seed").map_or(Ok(0x5017), |v| {
        v.parse().map_err(|e| format!("--seed: {e}"))
    })?;
    let strategy = opt(args, "--strategy").unwrap_or_else(|| "fv".into());

    let params = match cpu.kind {
        suit::hw::CpuKind::AmdRyzen7700X => StrategyParams::amd(),
        _ => StrategyParams::intel(),
    };

    // Strategy validation happens once, before the fan-out.
    let engine_cfg = match strategy.as_str() {
        "e" => None,
        s => {
            let (strat, adaptive) = match s {
                "fv" => (OperatingStrategy::FreqVolt, None),
                "f" => (OperatingStrategy::Frequency, None),
                "v" => (OperatingStrategy::Voltage, None),
                "adaptive" => (
                    OperatingStrategy::FreqVolt,
                    Some(suit::core::AdaptiveConfig::for_cpu(&cpu.delays)),
                ),
                other => return Err(format!("unknown strategy '{other}'")),
            };
            Some(SimConfig {
                strategy: strat,
                params,
                level,
                cores,
                seed,
                max_insts: insts,
                record_timeline: false,
                adaptive,
            })
        }
    };

    let results = suit::exec::run(profiles.len(), threads, |i| {
        let p = profiles[i];
        match &engine_cfg {
            None => simulate_emulation(&cpu, p, level, seed, insts),
            Some(cfg) => simulate(&cpu, p, cfg),
        }
    });

    for (p, r) in profiles.iter().zip(&results) {
        println!(
            "{} on {} at {} ({} strategy, {} core(s))",
            p.name, cpu.name, level, strategy, cores
        );
        println!("  performance : {:+.2} %", r.perf() * 100.0);
        println!("  power       : {:+.2} %", r.power() * 100.0);
        println!("  efficiency  : {:+.2} %", r.efficiency() * 100.0);
        println!(
            "  residency   : {:.1} % on the efficient curve",
            r.residency() * 100.0
        );
        println!(
            "  activity    : {} faultable instructions, {} #DO, {} timer fires, {} thrash hits",
            r.events, r.exceptions, r.timer_fires, r.thrash_hits
        );
    }
    Ok(())
}

/// Parses `--chunk-bursts N` (bursts per compressed chunk in a
/// `SUITTRC2` container), defaulting to the format's standard size.
fn parse_chunk_bursts(args: &[String]) -> Result<usize, String> {
    match opt(args, "--chunk-bursts") {
        None => Ok(suit::store::DEFAULT_CHUNK_BURSTS),
        Some(v) => match v.parse() {
            Ok(n) if (1..=suit::store::MAX_CHUNK_BURSTS).contains(&n) => Ok(n),
            _ => Err(format!(
                "--chunk-bursts must be in 1..={}, got '{v}'",
                suit::store::MAX_CHUNK_BURSTS
            )),
        },
    }
}

/// All non-flag tokens, in order (the counterpart of [`first_positional`];
/// only meaningful after [`check_args`] accepted the list).
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(args[i].clone());
            i += 1;
        }
    }
    out
}

/// Reads the 8-byte magic of a trace file to pick the container format.
fn is_suittrc2(path: &str) -> Result<bool, String> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)
        .map_err(|e| format!("{path}: {e}"))?;
    Ok(&magic == b"SUITTRC2")
}

fn cmd_trace(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("record") => {
            check_args(
                args,
                &[
                    "--workload",
                    "--out",
                    "--bursts",
                    "--seed",
                    "--format",
                    "--chunk-bursts",
                ],
                &[],
                1,
            )?;
            let name = opt(args, "--workload").ok_or("missing --workload")?;
            let p = profile::by_name(&name).ok_or_else(|| format!("unknown workload '{name}'"))?;
            let out = opt(args, "--out").ok_or("missing --out <file>")?;
            let bursts: usize = opt(args, "--bursts").map_or(Ok(10_000), |v| {
                v.parse().map_err(|e| format!("--bursts: {e}"))
            })?;
            let seed: u64 = opt(args, "--seed").map_or(Ok(0x5017), |v| {
                v.parse().map_err(|e| format!("--seed: {e}"))
            })?;
            let meta = TraceMeta {
                name: p.name.into(),
                ipc: p.ipc,
                total_insts: p.total_insts,
            };
            let f = std::fs::File::create(&out).map_err(|e| format!("{out}: {e}"))?;
            let mut w = std::io::BufWriter::new(f);
            match opt(args, "--format").as_deref().unwrap_or("v1") {
                "v1" => {
                    write_trace(&mut w, &meta, TraceGen::new(p, seed).take(bursts))
                        .map_err(|e| e.to_string())?;
                    println!("wrote {bursts} bursts of {} to {out}", p.name);
                }
                // v2 streams generator → compressor → disk: memory stays
                // O(chunk) no matter how long the recording runs.
                "v2" => {
                    let chunk_bursts = parse_chunk_bursts(args)?;
                    let stats = suit::store::pack(
                        &mut w,
                        &meta,
                        TraceGen::new(p, seed).take(bursts),
                        chunk_bursts,
                    )
                    .map_err(|e| e.to_string())?;
                    println!(
                        "packed {} bursts of {} into {out} ({} chunks, {} -> {} bytes)",
                        stats.bursts, p.name, stats.chunks, stats.raw_bytes, stats.packed_bytes
                    );
                }
                other => return Err(format!("unknown --format '{other}' (expected v1 or v2)")),
            }
            use std::io::Write;
            w.flush().map_err(|e| format!("{out}: {e}"))?;
            Ok(())
        }
        Some("pack") => {
            check_args(args, &["--chunk-bursts"], &[], 3)?;
            let pos = positionals(args);
            let (src, dst) = match (pos.get(1), pos.get(2)) {
                (Some(s), Some(d)) => (s.clone(), d.clone()),
                _ => return Err("usage: trace pack <in.suittrc> <out.suittrc2>".into()),
            };
            let chunk_bursts = parse_chunk_bursts(args)?;
            let mut f = std::fs::File::open(&src).map_err(|e| format!("{src}: {e}"))?;
            let (meta, bursts) = read_trace(&mut f).map_err(|e| e.to_string())?;
            let out = std::fs::File::create(&dst).map_err(|e| format!("{dst}: {e}"))?;
            let mut w = std::io::BufWriter::new(out);
            let stats = suit::store::pack(&mut w, &meta, bursts.iter().copied(), chunk_bursts)
                .map_err(|e| e.to_string())?;
            use std::io::Write;
            w.flush().map_err(|e| format!("{dst}: {e}"))?;
            println!(
                "packed {src} -> {dst}: {} bursts, {} chunks, {} -> {} bytes ({:.2}x)",
                stats.bursts,
                stats.chunks,
                stats.raw_bytes,
                stats.packed_bytes,
                stats.raw_bytes as f64 / stats.packed_bytes.max(1) as f64
            );
            Ok(())
        }
        Some("unpack") => {
            check_args(args, &[], &[], 3)?;
            let pos = positionals(args);
            let (src, dst) = match (pos.get(1), pos.get(2)) {
                (Some(s), Some(d)) => (s.clone(), d.clone()),
                _ => return Err("usage: trace unpack <in.suittrc2> <out.suittrc>".into()),
            };
            let f = std::fs::File::open(&src).map_err(|e| format!("{src}: {e}"))?;
            let reader = suit::store::StreamingReader::open(std::io::BufReader::new(f))
                .map_err(|e| format!("{src}: {e}"))?;
            let info = reader.info();
            let out = std::fs::File::create(&dst).map_err(|e| format!("{dst}: {e}"))?;
            let mut w = std::io::BufWriter::new(out);
            // The index knows the burst count up front, so the v1 write
            // streams too — chunk window in, varint records out.
            let mut bursts = reader.bursts();
            suit::trace::io::write_trace_counted(&mut w, &info.meta, info.bursts, &mut bursts)
                .map_err(|e| e.to_string())?;
            if let Some(e) = bursts.error() {
                return Err(format!("{src}: {e}"));
            }
            use std::io::Write;
            w.flush().map_err(|e| format!("{dst}: {e}"))?;
            println!("unpacked {src} -> {dst}: {} bursts", info.bursts);
            Ok(())
        }
        Some("info") => {
            check_args(args, &[], &[], 2)?;
            let path = args.get(1).ok_or("missing <file>")?;
            if is_suittrc2(path)? {
                let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
                let reader = suit::store::StreamingReader::open(std::io::BufReader::new(f))
                    .map_err(|e| format!("{path}: {e}"))?;
                let info = reader.info();
                println!(
                    "{path}: SUITTRC2 container, workload {} (ipc {:.1})",
                    info.meta.name, info.meta.ipc
                );
                println!("  bursts: {}", info.bursts);
                println!(
                    "  chunks: {} ({} bursts per full chunk)",
                    info.chunks, info.chunk_bursts
                );
                println!(
                    "  bytes: {} raw -> {} packed ({:.2}x)",
                    info.raw_bytes,
                    info.packed_bytes,
                    info.raw_bytes as f64 / info.packed_bytes.max(1) as f64
                );
                println!("  virtual length: {} instructions", info.meta.total_insts);
                return Ok(());
            }
            let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let (meta, bursts) = read_trace(&mut f).map_err(|e| e.to_string())?;
            let summary = suit::trace::event::TraceSummary::from_bursts(bursts.iter().copied());
            println!("{path}: workload {} (ipc {:.1})", meta.name, meta.ipc);
            println!("  bursts: {}", summary.bursts);
            println!("  faultable instructions: {}", summary.events);
            println!("  instructions covered: {}", summary.insts);
            println!("  mean gap: {:.0} instructions", summary.insts_per_event());
            println!("  largest burst gap: {}", summary.max_gap);
            Ok(())
        }
        Some("seek") => {
            check_args(args, &["--vtime"], &[], 2)?;
            let pos = positionals(args);
            let path = pos
                .get(1)
                .ok_or("usage: trace seek <file.suittrc2> --vtime N")?;
            let vtime: u64 = opt(args, "--vtime")
                .ok_or("missing --vtime <instructions>")?
                .parse()
                .map_err(|e| format!("--vtime: {e}"))?;
            let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let mut reader = suit::store::StreamingReader::open(std::io::BufReader::new(f))
                .map_err(|e| format!("{path}: {e}"))?;
            let start = reader
                .seek_to_vtime(vtime)
                .map_err(|e| format!("{path}: {e}"))?;
            match reader.next_burst().map_err(|e| format!("{path}: {e}"))? {
                Some(b) => {
                    println!(
                        "vtime {vtime}: burst starting at {start} (gap {}, {} events, \
                         {} within-gap, opcode {})",
                        b.gap_insts,
                        b.events,
                        b.within_gap_insts,
                        b.opcode.mnemonic()
                    );
                    println!("  chunks decoded to get here: {}", reader.chunk_decodes());
                }
                None => println!("vtime {vtime}: past the end of the trace (length {start})"),
            }
            Ok(())
        }
        _ => Err("usage: trace <record|pack|unpack|info|seek> ...".into()),
    }
}

/// `fleet`: rack-scale scenario over the event engine — racks of DVFS
/// domains with per-rack cooling/age governors, sharded between thermal
/// sync points. Output is byte-identical at every `--threads`, and the
/// `--event-driven` driver reproduces it exactly.
fn cmd_fleet(args: &[String]) -> CliResult {
    use suit::sim::fleet::{FleetConfig, FleetSim};
    check_args(
        args,
        &[
            "--config",
            "--racks",
            "--domains",
            "--cores-per-domain",
            "--cores",
            "--workload",
            "--epochs",
            "--insts",
            "--utilization",
            "--offset",
            "--strategy",
            "--cpu",
            "--seed",
            "--threads",
        ],
        &["--event-driven"],
        0,
    )?;
    let mut cfg = match opt(args, "--config") {
        Some(path) => {
            let src = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
            FleetConfig::from_json(&src).map_err(|e| format!("{path}: {e}"))?
        }
        None => FleetConfig::default(),
    };
    if let Some(v) = opt(args, "--racks") {
        cfg.racks = v.parse().map_err(|e| format!("--racks: {e}"))?;
    }
    if let Some(v) = opt(args, "--domains") {
        cfg.domains_per_rack = v.parse().map_err(|e| format!("--domains: {e}"))?;
    }
    if let Some(v) = opt(args, "--cores-per-domain") {
        cfg.cores_per_domain = v.parse().map_err(|e| format!("--cores-per-domain: {e}"))?;
    }
    if let Some(v) = opt(args, "--epochs") {
        cfg.epochs = v.parse().map_err(|e| format!("--epochs: {e}"))?;
    }
    if let Some(v) = opt(args, "--insts") {
        cfg.epoch_insts = v.parse().map_err(|e| format!("--insts: {e}"))?;
    }
    if let Some(v) = opt(args, "--seed") {
        cfg.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    if let Some(v) = opt(args, "--utilization") {
        cfg.utilization = v.parse().map_err(|e| format!("--utilization: {e}"))?;
    }
    if let Some(v) = opt(args, "--workload") {
        cfg.workloads = v.split(',').map(str::to_string).collect();
    }
    if let Some(v) = opt(args, "--cpu") {
        let mut chars = v.chars();
        cfg.cpu = match (chars.next(), chars.next()) {
            (Some(c), None) => c,
            _ => return Err(format!("--cpu must be one letter, got '{v}'")),
        };
    }
    if let Some(v) = opt(args, "--strategy") {
        cfg.strategy = match v.as_str() {
            "fv" => suit::core::OperatingStrategy::FreqVolt,
            "f" => suit::core::OperatingStrategy::Frequency,
            "v" => suit::core::OperatingStrategy::Voltage,
            other => return Err(format!("--strategy must be fv|f|v, got '{other}'")),
        };
    }
    if let Some(v) = opt(args, "--offset") {
        cfg.level = match v.as_str() {
            "70" => suit::hw::UndervoltLevel::Mv70,
            "97" => suit::hw::UndervoltLevel::Mv97,
            other => return Err(format!("--offset must be 70 or 97, got '{other}'")),
        };
    }
    // `--cores N` sizes the fleet by total core count: with racks and
    // cores-per-domain fixed, N must split evenly into domains.
    if let Some(v) = opt(args, "--cores") {
        if opt(args, "--domains").is_some() {
            return Err("--cores and --domains are mutually exclusive".to_string());
        }
        let total: usize = v.parse().map_err(|e| format!("--cores: {e}"))?;
        let per = cfg
            .racks
            .checked_mul(cfg.cores_per_domain)
            .filter(|&p| p > 0)
            .ok_or_else(|| "--cores: racks x cores-per-domain overflows".to_string())?;
        if total == 0 || total % per != 0 {
            return Err(format!(
                "--cores {total} must be a positive multiple of racks x cores-per-domain ({per})"
            ));
        }
        cfg.domains_per_rack = total / per;
    }
    let threads = parse_threads(args)?;
    let sim = FleetSim::new(cfg)?;
    let result = if args.iter().any(|a| a == "--event-driven") {
        sim.run_event_driven()
    } else {
        sim.run(threads)
    };
    print!("{}", result.render());
    Ok(())
}

fn cmd_mix(args: &[String]) -> CliResult {
    use suit::sim::engine::simulate_mixed;
    check_args(args, &["--cpu", "--insts", "--threads"], &[], 1)?;
    let name = first_positional(args).ok_or_else(|| {
        format!(
            "usage: mix <{}|all> [--cpu a|b|c] [--insts N] [--threads N]",
            suit::trace::profile::MIX_NAMES.join("|")
        )
    })?;
    // `all` fans every named mix out over the executor.
    let names: Vec<&str> = if name == "all" {
        suit::trace::profile::MIX_NAMES.to_vec()
    } else {
        vec![name.as_str()]
    };
    let mixes: Vec<Vec<&suit::trace::profile::WorkloadProfile>> = names
        .iter()
        .map(|n| {
            suit::trace::profile::mix(n).ok_or_else(|| {
                format!(
                    "unknown mix '{n}' (try {}, all)",
                    suit::trace::profile::MIX_NAMES.join(", ")
                )
            })
        })
        .collect::<Result<_, _>>()?;
    let threads = parse_threads(args)?;
    // Mixes model consolidation on ONE shared DVFS domain — only the
    // i9-9900K class has that topology (CPU C's per-core p-states would
    // never couple the workloads), so default to CPU a.
    let cpu = parse_cpu(Some(opt(args, "--cpu").unwrap_or_else(|| "a".into())))?;
    if !matches!(cpu.domains, suit::hw::DomainLayout::SharedAll) {
        eprintln!(
            "note: {} has per-core DVFS domains; a shared-domain mix is a what-if here",
            cpu.name
        );
    }
    let insts = opt(args, "--insts")
        .map(|v| v.parse::<u64>().map_err(|e| format!("--insts: {e}")))
        .transpose()?
        .unwrap_or(1_000_000_000);
    let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97);
    cfg.max_insts = Some(insts);
    if matches!(cpu.kind, suit::hw::CpuKind::AmdRyzen7700X) {
        cfg.strategy = OperatingStrategy::Frequency;
        cfg.params = StrategyParams::amd();
    }
    let results = suit::exec::run(mixes.len(), threads, |i| {
        simulate_mixed(&cpu, &mixes[i], &cfg)
    });
    for (name, m) in names.iter().zip(&results) {
        println!(
            "mix '{name}' on {} (one shared domain, {} strategy, -97 mV):",
            cpu.name, cfg.strategy
        );
        println!(
            "  domain: residency {:.1}%  power {:+.2}%  efficiency {:+.2}%",
            m.domain.residency() * 100.0,
            m.domain.power() * 100.0,
            m.domain.efficiency() * 100.0
        );
        for c in &m.per_core {
            println!(
                "  core {:<16} perf {:+.2}%  ({} faultable instructions)",
                c.workload,
                c.perf() * 100.0,
                c.events
            );
        }
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> CliResult {
    check_args(args, &[], &[], 2)?;
    let name = args.first().ok_or("usage: analyze <workload> [bursts]")?;
    let p = profile::by_name(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    let bursts: usize = args
        .get(1)
        .map_or(Ok(2_000), |v| v.parse().map_err(|e| format!("bursts: {e}")))?;
    let report = suit::trace::analyze::TraceReport::from_bursts(
        TraceGen::new(p, 0x5017).take(bursts),
        suit::trace::analyze::AnalyzeParams::xeon(p.ipc),
    );
    println!(
        "{} — Section 5.1 characterisation over {} bursts:",
        p.name, report.bursts
    );
    println!("  faultable instructions : {}", report.events);
    println!("  instructions covered   : {}", report.insts);
    println!(
        "  mean event gap         : {:.0} instructions",
        report.mean_event_gap
    );
    println!("  deadline episodes      : {}", report.episodes);
    println!(
        "  predicted residency    : {:.1}% (profile target {:.1}%)",
        report.predicted_residency * 100.0,
        p.target_residency * 100.0
    );
    println!("  (the prediction models the deadline only; thrashing prevention can park");
    println!("   borderline workloads lower — compare with `suit-cli simulate`)");
    print!("  gap decades            :");
    for d in 0..10 {
        print!(" 1e{d}:{}", report.histogram.bucket(d));
    }
    println!();
    Ok(())
}

fn cmd_security(args: &[String]) -> CliResult {
    check_args(args, &[], &[], 0)?;
    println!("{}", suit::bench::tables::security_report(10, 3_000));
    Ok(())
}

/// `scenario <sram|scrooge>`: the suit-scenarios campaigns — an SRAM
/// fault-domain sweep with the dual-class §6.9 audit matrix, or the
/// Scrooge attacker-economics search. `--config` takes the same JSON
/// document `POST /v1/scenario` accepts (the `"scenario"` discriminator
/// is optional here — the subcommand names it); `--json` prints the
/// service's canonical JSON report instead of the text rendering.
fn cmd_scenario(args: &[String]) -> CliResult {
    let kind = match args.first().map(String::as_str) {
        Some(k @ ("sram" | "scrooge")) => k,
        Some(other) => {
            return Err(format!(
                "unknown scenario '{other}' (expected sram or scrooge)"
            ))
        }
        None => return Err("missing scenario (expected sram or scrooge)".into()),
    };
    let rest = &args[1..];
    check_args(rest, &["--config", "--seed", "--threads"], &["--json"], 0)?;
    let threads = parse_threads(rest)?;
    let as_json = rest.iter().any(|a| a == "--json");
    let seed: Option<u64> = opt(rest, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?;
    let src = match opt(rest, "--config") {
        Some(path) => Some(std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?),
        None => None,
    };
    let tele = suit::telemetry::Telemetry::off();
    match kind {
        "sram" => {
            let mut cfg = match &src {
                Some(s) => suit::scenarios::SramScenarioConfig::from_json(s)?,
                None => suit::scenarios::SramScenarioConfig::default(),
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            let report = suit::scenarios::sram::run(&cfg, threads.count(), &tele);
            if as_json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
        }
        _ => {
            let mut cfg = match &src {
                Some(s) => suit::scenarios::ScroogeConfig::from_json(s)?,
                None => suit::scenarios::ScroogeConfig::default(),
            };
            if let Some(s) = seed {
                cfg.seed = s;
            }
            let report = suit::scenarios::scrooge::search(&cfg, threads.count(), &tele)?;
            if as_json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
        }
    }
    Ok(())
}

/// `profile <workload>`: one instrumented simulation — telemetry summary
/// on stdout, optional Chrome/Perfetto trace via `--trace-out`.
fn cmd_profile(args: &[String]) -> CliResult {
    check_args(
        args,
        &[
            "--trace-out",
            "--cpu",
            "--strategy",
            "--offset",
            "--cores",
            "--insts",
            "--seed",
            "--events",
            "--threads",
        ],
        &[],
        1,
    )?;
    // A profile run is one instrumented simulation, so `--threads` has
    // nothing to fan out — but every subcommand accepts the flag through
    // the same strict parse-and-usage path, so a bad value fails the
    // same way everywhere instead of being silently ignored here.
    let _ = parse_threads(args)?;
    let name = first_positional(args).ok_or("missing <workload> (see `suit-cli list`)")?;
    let p = profile::by_name(&name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    let cpu = parse_cpu(opt(args, "--cpu"))?;
    let level = parse_level(opt(args, "--offset"))?;
    let cores: usize =
        opt(args, "--cores").map_or(Ok(1), |v| v.parse().map_err(|e| format!("--cores: {e}")))?;
    let insts: Option<u64> = opt(args, "--insts")
        .map(|v| v.parse().map_err(|e| format!("--insts: {e}")))
        .transpose()?;
    let seed: u64 = opt(args, "--seed").map_or(Ok(0x5017), |v| {
        v.parse().map_err(|e| format!("--seed: {e}"))
    })?;
    let events: usize = opt(args, "--events").map_or(Ok(1 << 16), |v| {
        v.parse().map_err(|e| format!("--events: {e}"))
    })?;
    let strategy = opt(args, "--strategy").unwrap_or_else(|| "fv".into());
    let (strat, adaptive) = match strategy.as_str() {
        "fv" => (OperatingStrategy::FreqVolt, None),
        "f" => (OperatingStrategy::Frequency, None),
        "v" => (OperatingStrategy::Voltage, None),
        "adaptive" => (
            OperatingStrategy::FreqVolt,
            Some(suit::core::AdaptiveConfig::for_cpu(&cpu.delays)),
        ),
        other => {
            return Err(format!(
                "unknown strategy '{other}' (profile needs a curve-switching strategy)"
            ))
        }
    };
    let params = match cpu.kind {
        suit::hw::CpuKind::AmdRyzen7700X => StrategyParams::amd(),
        _ => StrategyParams::intel(),
    };
    let cfg = SimConfig {
        strategy: strat,
        params,
        level,
        cores,
        seed,
        max_insts: insts,
        record_timeline: false,
        adaptive,
    };

    let tele = Telemetry::with_capacity(events);
    let r = simulate_telemetry(&cpu, p, &cfg, &tele);
    let snap = tele.snapshot();

    println!(
        "profiled {} on {} at {} ({} strategy, {} core(s))",
        p.name, cpu.name, level, strategy, cores
    );
    println!(
        "  performance {:+.2} %  efficiency {:+.2} %  residency {:.1} %\n",
        r.perf() * 100.0,
        r.efficiency() * 100.0,
        r.residency() * 100.0
    );
    println!("{}", snap.summary());

    if let Some(out) = opt(args, "--trace-out") {
        let json = snap.to_perfetto_json();
        let stats = validate_perfetto(&json)
            .map_err(|e| format!("internal: emitted invalid trace: {e}"))?;
        std::fs::write(&out, &json).map_err(|e| format!("{out}: {e}"))?;
        println!(
            "\nwrote {out}: {} trace events ({} spans, {} instants; {} dropped) — open in ui.perfetto.dev",
            stats.total - stats.metadata,
            stats.spans,
            stats.instants,
            snap.events_dropped
        );
    }
    Ok(())
}

/// `validate-trace <file|->`: parse a Chrome/Perfetto trace with the
/// in-tree JSON parser and check the event-stream invariants. `-` reads
/// the trace from stdin, so `suit-cli profile ... --trace-out /dev/stdout`
/// style pipelines work without a temp file.
fn cmd_validate_trace(args: &[String]) -> CliResult {
    check_args(args, &[], &[], 1)?;
    let path = args.first().ok_or("missing <file|-> (- reads stdin)")?;
    let src = if path == "-" {
        let mut s = String::new();
        use std::io::Read;
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    let stats = validate_perfetto(&src).map_err(|e| format!("{path}: invalid trace: {e}"))?;
    println!(
        "{path}: valid Perfetto trace — {} events ({} spans, {} instants, {} metadata)",
        stats.total, stats.spans, stats.instants, stats.metadata
    );
    let mut names: Vec<(&String, &usize)> = stats.names.iter().collect();
    names.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (name, n) in names {
        println!("  {n:>8}  {name}");
    }
    Ok(())
}

/// `serve`: run the resident simulation service until `POST /v1/shutdown`.
///
/// All flags are validated *before* the socket is bound, so a bad
/// `--addr` or `--queue-depth` fails with the usage text and never opens
/// a port.
fn cmd_serve(args: &[String]) -> CliResult {
    check_args(
        args,
        &[
            "--addr",
            "--threads",
            "--queue-depth",
            "--deadline-ms",
            "--cache-entries",
            "--cache-bytes",
            "--trace-entries",
            "--trace-bytes",
        ],
        &[],
        0,
    )?;
    let addr = opt(args, "--addr").unwrap_or_else(|| "127.0.0.1:8017".into());
    let sock: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("--addr must be HOST:PORT, got '{addr}' ({e})"))?;
    let threads = parse_threads(args)?;
    let queue_depth: usize = match opt(args, "--queue-depth") {
        None => 32,
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                return Err(format!(
                    "--queue-depth must be a positive integer, got '{v}'"
                ))
            }
        },
    };
    let deadline_ms: Option<u64> = opt(args, "--deadline-ms")
        .map(|v| v.parse().map_err(|e| format!("--deadline-ms: {e}")))
        .transpose()?;
    let default_cfg = suit::serve::ServeConfig::default();
    // `0` on either bound disables the result cache (and coalescing).
    let cache_entries: usize = match opt(args, "--cache-entries") {
        None => default_cfg.cache_entries,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--cache-entries must be a non-negative integer, got '{v}'"))?,
    };
    let cache_bytes: usize = match opt(args, "--cache-bytes") {
        None => default_cfg.cache_bytes,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--cache-bytes must be a non-negative integer, got '{v}'"))?,
    };
    // `0` on either bound disables the trace store (uploads get 413).
    let trace_entries: usize = match opt(args, "--trace-entries") {
        None => default_cfg.trace_entries,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--trace-entries must be a non-negative integer, got '{v}'"))?,
    };
    let trace_bytes: usize = match opt(args, "--trace-bytes") {
        None => default_cfg.trace_bytes,
        Some(v) => v
            .parse()
            .map_err(|_| format!("--trace-bytes must be a non-negative integer, got '{v}'"))?,
    };
    let cfg = suit::serve::ServeConfig {
        threads,
        queue_depth,
        default_deadline_ms: deadline_ms,
        cache_entries,
        cache_bytes,
        trace_entries,
        trace_bytes,
        ..default_cfg
    };
    let server = suit::serve::Server::bind(&sock.to_string(), cfg).map_err(|e| e.to_string())?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    // The CI smoke step (and anyone using `--addr 127.0.0.1:0`) reads the
    // resolved port off this line, so keep its shape stable and flushed.
    let cache_desc = if cache_entries == 0 || cache_bytes == 0 {
        "cache off".to_string()
    } else {
        format!("cache {cache_entries} entries / {cache_bytes} bytes")
    };
    println!(
        "suit-serve listening on {local} ({} worker(s), queue depth {queue_depth}, {cache_desc})",
        threads.count()
    );
    use std::io::Write;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())?;
    println!("suit-serve drained and stopped");
    Ok(())
}

/// `client <path>`: one request against a running service; prints the
/// response body to stdout and fails (nonzero exit) on any non-2xx
/// status, so shell pipelines and the CI smoke step can chain on it.
/// `--expect-json` additionally parses the body with the in-tree JSON
/// parser and fails on anything malformed. `--etag TAG` sends
/// `If-None-Match` (quoting the tag if needed) and treats a bodiless
/// `304 not modified` as success; `--show-etag` appends the response's
/// `etag` header as a final `etag: …` line so scripts can capture it.
/// `--body-file <file>` POSTs the file's raw bytes as
/// `application/octet-stream` — the upload path for `/v1/trace`.
fn cmd_client(args: &[String]) -> CliResult {
    check_args(
        args,
        &[
            "--addr",
            "--method",
            "--body",
            "--body-file",
            "--timeout-ms",
            "--etag",
        ],
        &["--expect-json", "--show-etag"],
        1,
    )?;
    let path = first_positional(args).ok_or("missing <path> (e.g. /v1/healthz)")?;
    if !path.starts_with('/') {
        return Err(format!("path must start with '/', got '{path}'"));
    }
    let addr = opt(args, "--addr").unwrap_or_else(|| "127.0.0.1:8017".into());
    let _sock: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("--addr must be HOST:PORT, got '{addr}' ({e})"))?;
    let body = match opt(args, "--body") {
        // `--body -` reads the request body from stdin, mirroring
        // `validate-trace -`.
        Some(b) if b == "-" => {
            let mut s = String::new();
            use std::io::Read;
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("stdin: {e}"))?;
            Some(s)
        }
        other => other,
    };
    let body_file = opt(args, "--body-file");
    if body_file.is_some() && body.is_some() {
        return Err("--body and --body-file are mutually exclusive".into());
    }
    if body_file.is_some() && opt(args, "--etag").is_some() {
        return Err("--etag does not apply to binary uploads (--body-file)".into());
    }
    // POST whenever a body is supplied; an explicit --method wins.
    let default_method = if body.is_some() || body_file.is_some() {
        "POST"
    } else {
        "GET"
    };
    let method = opt(args, "--method").unwrap_or_else(|| default_method.into());
    match method.as_str() {
        "GET" | "POST" => {}
        other => {
            return Err(format!(
                "unsupported method '{other}' (expected GET or POST)"
            ))
        }
    }
    let timeout_ms: u64 = opt(args, "--timeout-ms").map_or(Ok(30_000), |v| {
        v.parse().map_err(|e| format!("--timeout-ms: {e}"))
    })?;
    // `--etag x` sends `If-None-Match: "x"`; a tag already quoted (or
    // the `*` wildcard) passes through verbatim.
    let if_none_match = opt(args, "--etag").map(|t| {
        if t == "*" || t.starts_with('"') || t.starts_with("W/") {
            t
        } else {
            format!("\"{t}\"")
        }
    });
    let headers: Vec<(&str, &str)> = if_none_match
        .as_deref()
        .map(|t| vec![("if-none-match", t)])
        .unwrap_or_default();
    let timeout = std::time::Duration::from_millis(timeout_ms);
    let resp = match body_file {
        Some(file) => {
            let bytes = std::fs::read(&file).map_err(|e| format!("{file}: {e}"))?;
            suit::serve::request_bytes(&addr, &method, &path, &bytes, timeout)
        }
        None => suit::serve::request_with_headers(
            &addr,
            &method,
            &path,
            body.as_deref(),
            &headers,
            timeout,
        ),
    }
    .map_err(|e| e.to_string())?;
    let text = resp
        .text()
        .map_err(|e| format!("response body: {e}"))?
        .to_string();
    let ok = (200..300).contains(&resp.status) || (resp.status == 304 && if_none_match.is_some());
    if !ok {
        return Err(format!("HTTP {}: {text}", resp.status));
    }
    if resp.status == 304 {
        println!("304 not modified");
        return Ok(());
    }
    if args.iter().any(|a| a == "--expect-json") {
        suit::telemetry::json::parse(&text)
            .map_err(|e| format!("response body is not valid JSON: {e}"))?;
    }
    println!("{text}");
    if args.iter().any(|a| a == "--show-etag") {
        if let Some(etag) = resp.header("etag") {
            println!("etag: {etag}");
        }
    }
    Ok(())
}
