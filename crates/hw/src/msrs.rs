//! The model-specific registers the paper's measurements ran through.
//!
//! §5 of the paper measures everything via MSRs: the undocumented
//! overclocking mailbox `MSR 0x150` to set voltage offsets (§2.4, \[45\]),
//! `IA32_PERF_STATUS` to read the core voltage (Fig. 8), `IA32_PERF_CTL`
//! to set frequency (Fig. 9), `APERF`/`MPERF` for the effective frequency
//! (§5.2), and the RAPL energy counters for package power (§5.4). These
//! encoders/decoders model those interfaces bit-exactly, so tooling built
//! on this crate speaks the same formats as the kernel modules the
//! authors used.

use suit_isa::{SimDuration, SimTime};

/// Voltage planes of the OC mailbox (plane 0 = core, 2 = cache — the two
/// the paper offsets together, "Core + Cache Voltage Offset", Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoltagePlane {
    /// CPU core.
    Core = 0,
    /// Integrated GPU.
    Gpu = 1,
    /// Ring/cache.
    Cache = 2,
    /// System agent.
    Uncore = 3,
    /// Analog I/O.
    AnalogIo = 4,
}

/// Encodes an undervolt offset write for the OC mailbox `MSR 0x150`
/// (the `linux-intel-undervolt` format \[45\]): offset in units of
/// 1/1.024 mV as a signed 11-bit field in bits 31:21, plane select in
/// bits 42:40, write-enable bit 36, command `0x11` in bits 39:32, busy
/// bit 63.
pub fn encode_msr150_write(plane: VoltagePlane, offset_mv: f64) -> u64 {
    assert!(
        (-500.0..=0.0).contains(&offset_mv),
        "offset {offset_mv} mV outside the sane undervolt range"
    );
    let steps = (offset_mv * 1.024).round() as i32; // 1/1.024 mV units
    let field = (steps as u32 & 0x7FF) as u64; // signed 11-bit
    (1u64 << 63)                 // busy/start
        | ((plane as u64) << 40)
        | (0x11u64 << 32)        // read/write voltage command
        | (1u64 << 36)           // write bit
        | (field << 21)
}

/// Decodes the offset (mV) from an `MSR 0x150` value written with
/// [`encode_msr150_write`].
pub fn decode_msr150_offset_mv(value: u64) -> f64 {
    let field = ((value >> 21) & 0x7FF) as u32;
    // Sign-extend 11 bits.
    let steps = if field & 0x400 != 0 {
        (field | !0x7FF) as i32
    } else {
        field as i32
    };
    f64::from(steps) / 1.024
}

/// Decodes the voltage plane from an `MSR 0x150` value.
pub fn decode_msr150_plane(value: u64) -> Option<VoltagePlane> {
    match (value >> 40) & 0x7 {
        0 => Some(VoltagePlane::Core),
        1 => Some(VoltagePlane::Gpu),
        2 => Some(VoltagePlane::Cache),
        3 => Some(VoltagePlane::Uncore),
        4 => Some(VoltagePlane::AnalogIo),
        _ => None,
    }
}

/// Encodes a core voltage into `IA32_PERF_STATUS` (0x198) format: bits
/// 47:32 hold the voltage in units of 1/8192 V.
pub fn encode_perf_status(voltage_mv: f64) -> u64 {
    assert!((0.0..=2000.0).contains(&voltage_mv));
    let units = (voltage_mv / 1000.0 * 8192.0).round() as u64;
    (units & 0xFFFF) << 32
}

/// Reads the core voltage (mV) from an `IA32_PERF_STATUS` value — the
/// polling loop of Fig. 8.
pub fn decode_perf_status_mv(value: u64) -> f64 {
    ((value >> 32) & 0xFFFF) as f64 / 8192.0 * 1000.0
}

/// Encodes a frequency target into `IA32_PERF_CTL` (0x199): the ratio
/// (multiples of the 100 MHz bus clock) in bits 15:8.
pub fn encode_perf_ctl(freq_ghz: f64) -> u64 {
    assert!((0.4..=6.0).contains(&freq_ghz), "ratio out of range");
    let ratio = (freq_ghz * 10.0).round() as u64;
    (ratio & 0xFF) << 8
}

/// Decodes the frequency target (GHz) from an `IA32_PERF_CTL` value.
pub fn decode_perf_ctl_ghz(value: u64) -> f64 {
    ((value >> 8) & 0xFF) as f64 / 10.0
}

/// The APERF/MPERF pair (§5.2): MPERF ticks at the TSC base frequency,
/// APERF at the actual core frequency; their delta ratio gives the mean
/// effective frequency over an interval — including the stalls of Fig. 9
/// where neither advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApMperf {
    /// APERF accumulator.
    pub aperf: u64,
    /// MPERF accumulator.
    pub mperf: u64,
}

impl ApMperf {
    /// Advances both counters over `dt`: `base_ghz` drives MPERF,
    /// `actual_ghz` APERF; `stalled` freezes both (clock-gated).
    pub fn tick(&mut self, dt: SimDuration, base_ghz: f64, actual_ghz: f64, stalled: bool) {
        if stalled {
            return;
        }
        let secs = dt.as_secs_f64();
        self.aperf = self.aperf.wrapping_add((actual_ghz * 1e9 * secs) as u64);
        self.mperf = self.mperf.wrapping_add((base_ghz * 1e9 * secs) as u64);
    }

    /// The effective frequency between two snapshots, GHz.
    pub fn effective_ghz(before: ApMperf, after: ApMperf, base_ghz: f64) -> f64 {
        let da = after.aperf.wrapping_sub(before.aperf) as f64;
        let dm = after.mperf.wrapping_sub(before.mperf) as f64;
        if dm == 0.0 {
            return 0.0;
        }
        base_ghz * da / dm
    }
}

/// A RAPL package-energy counter (`MSR_PKG_ENERGY_STATUS`): a wrapping
/// 32-bit accumulator in units of 2⁻ᴱˢᵁ joules, ESU from
/// `MSR_RAPL_POWER_UNIT` (15.3 µJ at the typical ESU = 16 on the paper's
/// era of CPUs; we use ESU = 14, 61 µJ, the i9-9900K value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaplCounter {
    /// Energy-status-unit exponent (energy unit = 2^-esu J).
    pub esu: u32,
    raw: u32,
    last_update: SimTime,
    /// Accumulated sub-unit energy not yet reflected in `raw`, joules.
    residual_j: f64,
}

impl RaplCounter {
    /// A counter with the i9-9900K's ESU (14 → 61.04 µJ units).
    pub fn new() -> Self {
        Self::with_esu(14)
    }

    /// A counter with an explicit ESU exponent.
    pub fn with_esu(esu: u32) -> Self {
        assert!((10..=20).contains(&esu), "implausible RAPL unit");
        RaplCounter {
            esu,
            raw: 0,
            last_update: SimTime::ZERO,
            residual_j: 0.0,
        }
    }

    /// Joules per counter unit.
    pub fn unit_joules(&self) -> f64 {
        (0.5f64).powi(self.esu as i32)
    }

    /// Integrates `watts` of draw up to `now`, advancing (and possibly
    /// wrapping) the counter.
    pub fn integrate(&mut self, now: SimTime, watts: f64) {
        assert!(watts >= 0.0);
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        self.last_update = now;
        self.residual_j += watts * dt;
        let units = (self.residual_j / self.unit_joules()).floor();
        self.residual_j -= units * self.unit_joules();
        self.raw = self.raw.wrapping_add(units as u32);
    }

    /// The raw 32-bit counter value (what `rdmsr` returns).
    pub fn read_raw(&self) -> u32 {
        self.raw
    }

    /// Energy between two raw readings, joules (wrap-safe, as RAPL
    /// consumers must be).
    pub fn delta_joules(&self, before: u32, after: u32) -> f64 {
        f64::from(after.wrapping_sub(before)) * self.unit_joules()
    }
}

impl Default for RaplCounter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msr150_roundtrip() {
        for mv in [-97.0f64, -70.0, -50.0, -125.0, 0.0] {
            let v = encode_msr150_write(VoltagePlane::Core, mv);
            let back = decode_msr150_offset_mv(v);
            assert!((back - mv).abs() < 0.5, "{mv} -> {back}");
            assert_eq!(decode_msr150_plane(v), Some(VoltagePlane::Core));
            assert!(v & (1 << 63) != 0, "busy bit set");
            assert!(v & (1 << 36) != 0, "write bit set");
        }
        let cache = encode_msr150_write(VoltagePlane::Cache, -97.0);
        assert_eq!(decode_msr150_plane(cache), Some(VoltagePlane::Cache));
    }

    #[test]
    #[should_panic(expected = "undervolt range")]
    fn msr150_rejects_overvolting() {
        let _ = encode_msr150_write(VoltagePlane::Core, 50.0);
    }

    #[test]
    fn perf_status_roundtrip() {
        for mv in [800.0f64, 991.0, 1082.0, 1174.0] {
            let back = decode_perf_status_mv(encode_perf_status(mv));
            assert!((back - mv).abs() < 0.15, "{mv} -> {back}");
        }
    }

    #[test]
    fn perf_ctl_roundtrip() {
        assert_eq!(decode_perf_ctl_ghz(encode_perf_ctl(4.5)), 4.5);
        assert_eq!(decode_perf_ctl_ghz(encode_perf_ctl(2.6)), 2.6);
    }

    #[test]
    fn aperf_mperf_measures_effective_frequency() {
        let base = 3.0;
        let mut c = ApMperf::default();
        let before = c;
        // 100 µs at 4.5 GHz, 27 µs stalled, 100 µs at 3.9 GHz.
        c.tick(SimDuration::from_micros(100), base, 4.5, false);
        c.tick(SimDuration::from_micros(27), base, 4.5, true);
        c.tick(SimDuration::from_micros(100), base, 3.9, false);
        let eff = ApMperf::effective_ghz(before, c, base);
        // Stall contributes nothing to either counter (the Fig. 9 artefact:
        // the measured value reflects only un-stalled time).
        let expect = (4.5 * 100.0 + 3.9 * 100.0) / 200.0;
        assert!((eff - expect).abs() < 0.01, "{eff} vs {expect}");
    }

    #[test]
    fn rapl_integrates_and_wraps() {
        let mut r = RaplCounter::new();
        let t1 = SimTime::ZERO + SimDuration::from_millis(100);
        r.integrate(t1, 93.0); // 9.3 J
        let raw1 = r.read_raw();
        let expected_units = 9.3 / r.unit_joules();
        assert!((f64::from(raw1) - expected_units).abs() < 2.0);

        // Wrap: force the counter near the top and integrate past it.
        let mut w = RaplCounter::new();
        w.raw = u32::MAX - 10;
        let before = w.read_raw();
        w.integrate(SimTime::ZERO + SimDuration::from_millis(10), 93.0);
        let after = w.read_raw();
        assert!(after < before, "counter must wrap");
        let delta = w.delta_joules(before, after);
        assert!((delta - 0.93).abs() < 0.01, "wrap-safe delta {delta}");
    }

    #[test]
    fn rapl_unit_is_61_microjoules() {
        let r = RaplCounter::new();
        assert!((r.unit_joules() - 61.035e-6).abs() < 1e-7);
    }
}
