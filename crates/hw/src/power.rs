//! CMOS package power model (§2.1).
//!
//! Dynamic power of a CMOS circuit is `P_dyn = C_L · V² · f` (§2.1);
//! leakage adds a static component that grows super-linearly with voltage.
//! The model here is calibrated against the i9-9900K's measured SPEC
//! CPU2017 operating point (≈ 93 W at ≈ 4.5 GHz, Fig. 12) and is the
//! physical basis for all efficiency numbers in the evaluation: the paper's
//! observation that efficiency "approximately doubles" from −70 mV to
//! −97 mV is exactly the quadratic voltage dependency this model encodes.

use crate::pstate::DvfsCurve;

/// A calibrated package power model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Effective switched capacitance, in W / (V² · GHz).
    pub c_eff: f64,
    /// Static (leakage) power at the reference voltage, W.
    pub static_ref_w: f64,
    /// Reference voltage for the leakage term, mV.
    pub v_ref_mv: f64,
    /// Uncore/DRAM-interface power that does not scale with core V/f, W.
    pub uncore_w: f64,
}

impl PowerModel {
    /// Calibrates a model so that `package_power(v_ref, f_ref) = p_ref`,
    /// attributing `static_frac` of core power to leakage and `uncore_w`
    /// watts to the uncore.
    ///
    /// # Panics
    ///
    /// Panics if `static_frac` is outside `[0, 1)` or any input is
    /// non-positive.
    pub fn calibrated(
        p_ref_w: f64,
        v_ref_mv: f64,
        f_ref_ghz: f64,
        static_frac: f64,
        uncore_w: f64,
    ) -> Self {
        assert!(p_ref_w > 0.0 && v_ref_mv > 0.0 && f_ref_ghz > 0.0);
        assert!((0.0..1.0).contains(&static_frac));
        assert!(uncore_w >= 0.0 && uncore_w < p_ref_w);
        let core = p_ref_w - uncore_w;
        let static_ref_w = core * static_frac;
        let dyn_ref = core - static_ref_w;
        let v = v_ref_mv / 1000.0;
        PowerModel {
            c_eff: dyn_ref / (v * v * f_ref_ghz),
            static_ref_w,
            v_ref_mv,
            uncore_w,
        }
    }

    /// The i9-9900K model: 93 W at 1082 mV / 4.5 GHz with 20 % leakage and
    /// 8 W of uncore.
    pub fn i9_9900k() -> Self {
        Self::calibrated(93.0, 1082.0, 4.5, 0.20, 8.0)
    }

    /// Dynamic core power at the given operating point, W.
    pub fn dynamic_power(&self, voltage_mv: f64, freq_ghz: f64) -> f64 {
        let v = voltage_mv / 1000.0;
        self.c_eff * v * v * freq_ghz
    }

    /// Static (leakage) power at the given voltage, W. Modelled as
    /// `P_s(V) = P_s(V_ref) · (V / V_ref)³` — leakage falls faster than
    /// linearly with voltage in short-channel devices.
    pub fn static_power(&self, voltage_mv: f64) -> f64 {
        let r = voltage_mv / self.v_ref_mv;
        self.static_ref_w * r * r * r
    }

    /// Total package power, W.
    pub fn package_power(&self, voltage_mv: f64, freq_ghz: f64) -> f64 {
        self.dynamic_power(voltage_mv, freq_ghz) + self.static_power(voltage_mv) + self.uncore_w
    }

    /// The highest frequency on `curve` (with `offset_mv` applied to its
    /// voltages) whose package power stays within `tdp_w`, found by
    /// bisection. Clamped to the curve's frequency range.
    pub fn max_freq_within_tdp(&self, curve: &DvfsCurve, offset_mv: f64, tdp_w: f64) -> f64 {
        let f_lo = curve.min_freq_ghz();
        let f_hi = curve.max_freq_ghz();
        let power_at = |f: f64| self.package_power(curve.voltage_at(f) + offset_mv, f);
        if power_at(f_hi) <= tdp_w {
            return f_hi;
        }
        if power_at(f_lo) >= tdp_w {
            return f_lo;
        }
        let (mut lo, mut hi) = (f_lo, f_hi);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if power_at(mid) <= tdp_w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_reference_point() {
        let m = PowerModel::i9_9900k();
        let p = m.package_power(1082.0, 4.5);
        assert!((p - 93.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn dynamic_power_is_quadratic_in_voltage() {
        let m = PowerModel::i9_9900k();
        let p1 = m.dynamic_power(1000.0, 4.0);
        let p2 = m.dynamic_power(2000.0, 4.0);
        assert!((p2 / p1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_is_linear_in_frequency() {
        let m = PowerModel::i9_9900k();
        let p1 = m.dynamic_power(1000.0, 2.0);
        let p2 = m.dynamic_power(1000.0, 4.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn undervolting_saves_the_right_ballpark() {
        // A −97 mV undervolt at fixed 4.5 GHz should cut package power by
        // roughly the measured 16 % (Table 2, i9-9900K).
        let m = PowerModel::i9_9900k();
        let base = m.package_power(1082.0, 4.5);
        let uv = m.package_power(1082.0 - 97.0, 4.5);
        let delta = uv / base - 1.0;
        assert!((-0.20..=-0.12).contains(&delta), "Δpower = {delta:.3}");
    }

    #[test]
    fn tdp_solver_finds_boundary() {
        let m = PowerModel::i9_9900k();
        let curve = DvfsCurve::i9_9900k();
        let f = m.max_freq_within_tdp(&curve, 0.0, 80.0);
        let p = m.package_power(curve.voltage_at(f), f);
        assert!((p - 80.0).abs() < 0.05, "power at solved freq: {p}");
        // Undervolting raises the TDP-limited frequency.
        let f_uv = m.max_freq_within_tdp(&curve, -97.0, 80.0);
        assert!(f_uv > f, "{f_uv} vs {f}");
    }

    #[test]
    fn tdp_solver_clamps_to_curve_limits() {
        let m = PowerModel::i9_9900k();
        let curve = DvfsCurve::i9_9900k();
        assert_eq!(m.max_freq_within_tdp(&curve, 0.0, 10_000.0), 5.0);
        assert_eq!(m.max_freq_within_tdp(&curve, 0.0, 1.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_static_fraction() {
        let _ = PowerModel::calibrated(93.0, 1082.0, 4.5, 1.5, 8.0);
    }
}
