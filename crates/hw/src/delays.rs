//! Voltage/frequency transition-delay models (Figs. 8–11, §5.2–§5.3).
//!
//! The paper microbenchmarks how long real CPUs take to change core
//! voltage and frequency, because these delays dominate SUIT's switching
//! overhead. This module models each measured transition:
//!
//! * mean delay and spread (for the event-based simulator, which charges
//!   the mean, and for Monte-Carlo runs, which sample);
//! * the *settle curve* — the time series of voltage/frequency a polling
//!   measurement loop would observe, used to regenerate Figs. 8–11;
//! * whether the core stalls during the change (Intel frequency changes
//!   stall every core in the domain; AMD's do not).

use suit_isa::SimDuration;
use suit_rng::Rng;

use crate::measured;

/// The fixed delays of one CPU model, i.e. everything §5.2–§5.3 measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionDelays {
    /// Mean delay until a requested frequency change takes effect, µs.
    pub freq_change_us: f64,
    /// Spread (σ) of the frequency-change delay, µs.
    pub freq_change_sigma_us: f64,
    /// How long the core (or the whole domain) stalls during a frequency
    /// change, µs. Zero on CPUs that keep executing (AMD).
    pub freq_stall_us: f64,
    /// Mean delay until a requested voltage change manifests, µs.
    pub volt_change_us: f64,
    /// Spread (σ) of the voltage-change delay, µs.
    pub volt_change_sigma_us: f64,
    /// `#DO` exception entry delay (user space → handler), µs.
    pub exception_us: f64,
    /// Full user-space emulation round trip (two kernel entries), µs.
    pub emulation_call_us: f64,
}

impl TransitionDelays {
    /// The Intel Core i9-9900K (CPU 𝒜): 22 µs frequency change stalling
    /// the single clock domain, 350 µs voltage change.
    pub fn i9_9900k() -> Self {
        TransitionDelays {
            freq_change_us: measured::I9_FREQ_DELAY_US,
            freq_change_sigma_us: measured::I9_FREQ_DELAY_SIGMA_US,
            freq_stall_us: measured::I9_FREQ_DELAY_US,
            volt_change_us: measured::I9_VOLT_DELAY_US,
            volt_change_sigma_us: measured::I9_VOLT_DELAY_SIGMA_US,
            exception_us: measured::INTEL_EXCEPTION_DELAY_US,
            emulation_call_us: measured::INTEL_EMULATION_CALL_US,
        }
    }

    /// The AMD Ryzen 7 7700X (CPU ℬ): slow 668 µs frequency change but no
    /// stall; no software voltage control (the paper uses the BIOS curve
    /// optimizer), so the voltage path reuses the frequency delay.
    pub fn ryzen_7700x() -> Self {
        TransitionDelays {
            freq_change_us: measured::AMD_FREQ_DELAY_US,
            freq_change_sigma_us: measured::AMD_FREQ_DELAY_SIGMA_US,
            freq_stall_us: 0.0,
            volt_change_us: measured::AMD_FREQ_DELAY_US,
            volt_change_sigma_us: measured::AMD_FREQ_DELAY_SIGMA_US,
            exception_us: measured::AMD_EXCEPTION_DELAY_US,
            emulation_call_us: measured::AMD_EMULATION_CALL_US,
        }
    }

    /// The Intel Xeon Silver 4208 (CPU 𝒞): per-core p-state changes where
    /// the voltage moves first (335 µs) and the frequency follows (31 µs,
    /// stalling the core for 27 µs).
    pub fn xeon_4208() -> Self {
        TransitionDelays {
            freq_change_us: measured::XEON_FREQ_DELAY_US,
            freq_change_sigma_us: 2.3,
            freq_stall_us: measured::XEON_FREQ_STALL_US,
            volt_change_us: measured::XEON_VOLT_DELAY_US,
            volt_change_sigma_us: 135.0,
            exception_us: measured::INTEL_EXCEPTION_DELAY_US,
            emulation_call_us: measured::INTEL_EMULATION_CALL_US,
        }
    }

    /// Mean frequency-change delay as a [`SimDuration`].
    pub fn freq_change(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.freq_change_us)
    }

    /// Stall charged to execution during a frequency change.
    pub fn freq_stall(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.freq_stall_us)
    }

    /// Mean voltage-change delay as a [`SimDuration`].
    pub fn volt_change(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.volt_change_us)
    }

    /// Exception entry delay as a [`SimDuration`].
    pub fn exception(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.exception_us)
    }

    /// Emulation round-trip delay as a [`SimDuration`].
    pub fn emulation_call(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.emulation_call_us)
    }

    /// Samples a frequency-change delay with Gaussian-ish jitter (sum of
    /// three uniforms — the Irwin–Hall approximation avoids a
    /// normal-distribution dependency). Clamped at 20 %
    /// of the mean so pathological draws cannot go non-physical.
    pub fn sample_freq_change<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        sample_jittered(rng, self.freq_change_us, self.freq_change_sigma_us)
    }

    /// Samples a voltage-change delay (see [`Self::sample_freq_change`]).
    pub fn sample_volt_change<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        sample_jittered(rng, self.volt_change_us, self.volt_change_sigma_us)
    }
}

/// The three operating points as the precomputed delay table indexes
/// them: the efficient curve and the two conservative points (frequency
/// raise only, or full voltage + frequency move).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum PointKind {
    /// The efficient (undervolted) curve, `E`.
    Efficient = 0,
    /// Conservative via frequency raise only, `C_f`.
    ConservativeFreq = 1,
    /// Conservative via voltage raise at full frequency, `C_V`.
    ConservativeVolt = 2,
}

impl PointKind {
    /// Every operating point, in index order.
    pub const ALL: [PointKind; 3] = [
        PointKind::Efficient,
        PointKind::ConservativeFreq,
        PointKind::ConservativeVolt,
    ];
}

/// Every delay the inner simulation loop charges, precomputed once per
/// simulation as fixed-point [`SimDuration`]s and indexed by
/// ([`PointKind`], transition kind).
///
/// [`TransitionDelays`] stores the measured values as f64 microseconds,
/// so every transition used to pay a float multiply + round to convert
/// µs → picoseconds (and the `C_V` synchronous wait paid two plus an
/// add). The table performs those exact conversions — same operations,
/// same order — at construction, so a lookup is bit-identical to the
/// closed form (pinned by `delay_table_matches_closed_form` here and the
/// `model_properties` suite, including the Monte-Carlo jittered paths,
/// which rebuild the table from each run's sampled delays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayTable {
    sync_wait: [SimDuration; 3],
    async_delay: [SimDuration; 3],
    freq_stall: SimDuration,
    exception: SimDuration,
    emulation_call: SimDuration,
    emulation_remainder: SimDuration,
}

impl DelayTable {
    /// Precomputes every delay of `d`.
    pub fn new(d: &TransitionDelays) -> Self {
        let sync = |target: PointKind| match target {
            // Frequency-only move: the core (domain) waits for the clock.
            PointKind::Efficient | PointKind::ConservativeFreq => d.freq_change(),
            // Full p-state move: voltage first, then frequency (§5.2,
            // Xeon PCPS behaviour).
            PointKind::ConservativeVolt => d.volt_change() + d.freq_change(),
        };
        let async_ = |target: PointKind| match target {
            PointKind::Efficient | PointKind::ConservativeFreq => d.freq_change(),
            PointKind::ConservativeVolt => d.volt_change(),
        };
        DelayTable {
            sync_wait: PointKind::ALL.map(sync),
            async_delay: PointKind::ALL.map(async_),
            freq_stall: d.freq_stall(),
            exception: d.exception(),
            emulation_call: d.emulation_call(),
            emulation_remainder: d.emulation_call().saturating_sub(d.exception()),
        }
    }

    /// Stall charged by a synchronous p-state change to `target`.
    #[inline]
    pub fn sync_wait(&self, target: PointKind) -> SimDuration {
        self.sync_wait[target as usize]
    }

    /// Transport delay of an asynchronous p-state change to `target`.
    #[inline]
    pub fn async_delay(&self, target: PointKind) -> SimDuration {
        self.async_delay[target as usize]
    }

    /// Stall charged when a pending conservative frequency raise lands.
    #[inline]
    pub fn freq_stall(&self) -> SimDuration {
        self.freq_stall
    }

    /// `#DO` exception entry delay.
    #[inline]
    pub fn exception(&self) -> SimDuration {
        self.exception
    }

    /// Full user-space emulation round trip.
    #[inline]
    pub fn emulation_call(&self) -> SimDuration {
        self.emulation_call
    }

    /// The emulation round trip minus the exception entry already
    /// charged — the remainder billed by the `Emulated` handler action.
    #[inline]
    pub fn emulation_remainder(&self) -> SimDuration {
        self.emulation_remainder
    }
}

fn sample_jittered<R: Rng + ?Sized>(rng: &mut R, mean_us: f64, sigma_us: f64) -> SimDuration {
    // Irwin–Hall: the sum of 3 uniform(−1, 1) draws has σ = 1 exactly
    // (3 · 1/3) and is roughly bell-shaped — a normal approximation
    // without a distribution dependency.
    let z: f64 = (0..3).map(|_| rng.gen_range(-1.0..1.0)).sum();
    let us = (mean_us + z * sigma_us).max(mean_us * 0.2);
    SimDuration::from_micros_f64(us)
}

/// One sample of a settle-curve time series: elapsed time and observed
/// value (mV for voltage curves, GHz for frequency curves). `observed` is
/// `None` inside a stall window, where the measurement loop cannot run —
/// the grey gaps of Figs. 9 and 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SettleSample {
    /// Time since the change request, µs.
    pub t_us: f64,
    /// Observed value, or `None` while the core is stalled.
    pub observed: Option<f64>,
}

/// Generates the Fig. 8 style voltage settle curve: the value holds at
/// `from_mv` for a transport delay, slews to `to_mv`, then holds. `jitter`
/// perturbs the transport delay per repetition like the 20-rep scatter in
/// the figure.
pub fn voltage_settle_curve<R: Rng + ?Sized>(
    rng: &mut R,
    delays: &TransitionDelays,
    from_mv: f64,
    to_mv: f64,
    sample_period_us: f64,
    total_us: f64,
) -> Vec<SettleSample> {
    // The measured 350 µs is until the voltage has *stabilised*; the slew
    // itself occupies the last ~15 % of that window.
    let settle = delays.sample_volt_change(rng).as_micros_f64();
    let slew_start = settle * 0.85;
    let mut out = Vec::new();
    let mut t = 0.0;
    while t <= total_us {
        let v = if t <= slew_start {
            from_mv
        } else if t >= settle {
            to_mv
        } else {
            let x = (t - slew_start) / (settle - slew_start);
            from_mv + x * (to_mv - from_mv)
        };
        // Polling MSR_IA32_PERF_STATUS quantises to ~1 mV steps.
        out.push(SettleSample {
            t_us: t,
            observed: Some(v.round()),
        });
        t += sample_period_us;
    }
    out
}

/// Generates the Fig. 9/10/11 style frequency settle curve. On stalling
/// CPUs (Intel) no samples can be taken during the change: those samples
/// report `None`, and the first sample after the stall still shows the old
/// frequency (the late-APERF artefact the paper describes), after which
/// the new frequency is visible.
pub fn frequency_settle_curve<R: Rng + ?Sized>(
    rng: &mut R,
    delays: &TransitionDelays,
    from_ghz: f64,
    to_ghz: f64,
    sample_period_us: f64,
    total_us: f64,
) -> Vec<SettleSample> {
    let change = delays.sample_freq_change(rng).as_micros_f64();
    let stalls = delays.freq_stall_us > 0.0;
    let stall_end = change;
    let stall_start = change - delays.freq_stall_us.min(change);
    let mut out = Vec::new();
    let mut t = 0.0;
    let mut first_after_stall = true;
    while t <= total_us {
        let observed = if t < stall_start || !stalls {
            // AMD ramps smoothly; Intel holds the old frequency until the
            // stall begins.
            if !stalls {
                let x = (t / change).clamp(0.0, 1.0);
                Some(from_ghz + x * (to_ghz - from_ghz))
            } else {
                Some(from_ghz)
            }
        } else if t < stall_end {
            None // the measurement loop is stalled
        } else if first_after_stall {
            first_after_stall = false;
            Some(from_ghz) // late APERF update artefact
        } else {
            Some(to_ghz)
        };
        out.push(SettleSample { t_us: t, observed });
        t += sample_period_us;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_rng::SuitRng;

    #[test]
    fn cpu_constants_match_measurements() {
        let a = TransitionDelays::i9_9900k();
        assert_eq!(a.freq_change_us, 22.0);
        assert_eq!(a.volt_change_us, 350.0);
        let b = TransitionDelays::ryzen_7700x();
        assert_eq!(b.freq_change_us, 668.0);
        assert_eq!(b.freq_stall_us, 0.0);
        let c = TransitionDelays::xeon_4208();
        assert_eq!(c.volt_change_us, 335.0);
        assert_eq!(c.freq_stall_us, 27.0);
    }

    #[test]
    fn delay_table_matches_closed_form() {
        for d in [
            TransitionDelays::i9_9900k(),
            TransitionDelays::ryzen_7700x(),
            TransitionDelays::xeon_4208(),
        ] {
            let t = DelayTable::new(&d);
            assert_eq!(t.sync_wait(PointKind::Efficient), d.freq_change());
            assert_eq!(t.sync_wait(PointKind::ConservativeFreq), d.freq_change());
            assert_eq!(
                t.sync_wait(PointKind::ConservativeVolt),
                d.volt_change() + d.freq_change()
            );
            assert_eq!(t.async_delay(PointKind::Efficient), d.freq_change());
            assert_eq!(t.async_delay(PointKind::ConservativeFreq), d.freq_change());
            assert_eq!(t.async_delay(PointKind::ConservativeVolt), d.volt_change());
            assert_eq!(t.freq_stall(), d.freq_stall());
            assert_eq!(t.exception(), d.exception());
            assert_eq!(t.emulation_call(), d.emulation_call());
            assert_eq!(
                t.emulation_remainder(),
                d.emulation_call().saturating_sub(d.exception())
            );
        }
    }

    #[test]
    fn sampled_delays_center_on_mean() {
        let d = TransitionDelays::xeon_4208();
        let mut rng = SuitRng::seed_from_u64(7);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| d.sample_volt_change(&mut rng).as_micros_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 335.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn sampled_delays_never_collapse_to_zero() {
        let d = TransitionDelays::ryzen_7700x(); // σ = 292 is large
        let mut rng = SuitRng::seed_from_u64(3);
        for _ in 0..5000 {
            let s = d.sample_freq_change(&mut rng).as_micros_f64();
            assert!(s >= 668.0 * 0.2 - 1e-9, "{s}");
        }
    }

    #[test]
    fn voltage_curve_starts_low_and_settles_high() {
        let d = TransitionDelays::i9_9900k();
        let mut rng = SuitRng::seed_from_u64(1);
        let curve = voltage_settle_curve(&mut rng, &d, 800.0, 900.0, 5.0, 600.0);
        assert_eq!(curve.first().unwrap().observed, Some(800.0));
        assert_eq!(curve.last().unwrap().observed, Some(900.0));
        // Monotone non-decreasing.
        let vals: Vec<f64> = curve.iter().filter_map(|s| s.observed).collect();
        for w in vals.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // Settles in the 250–450 µs window around the measured 350 µs.
        let settle_t = curve
            .iter()
            .find(|s| s.observed == Some(900.0))
            .unwrap()
            .t_us;
        assert!((250.0..450.0).contains(&settle_t), "{settle_t}");
    }

    #[test]
    fn intel_frequency_curve_has_stall_gap_and_late_sample() {
        let d = TransitionDelays::i9_9900k();
        let mut rng = SuitRng::seed_from_u64(2);
        let curve = frequency_settle_curve(&mut rng, &d, 3.0, 2.6, 0.5, 40.0);
        let stalled = curve.iter().filter(|s| s.observed.is_none()).count();
        assert!(stalled > 0, "expected a stall gap");
        // The first observation after the gap still shows the old frequency.
        let gap_end = curve.iter().position(|s| s.observed.is_none()).unwrap()
            + curve
                .iter()
                .skip_while(|s| s.observed.is_some())
                .take_while(|s| s.observed.is_none())
                .count();
        assert_eq!(curve[gap_end].observed, Some(3.0));
        assert_eq!(curve.last().unwrap().observed, Some(2.6));
    }

    #[test]
    fn amd_frequency_curve_never_stalls() {
        let d = TransitionDelays::ryzen_7700x();
        let mut rng = SuitRng::seed_from_u64(4);
        let curve = frequency_settle_curve(&mut rng, &d, 3.0, 1.5, 10.0, 900.0);
        assert!(curve.iter().all(|s| s.observed.is_some()));
        assert_eq!(curve.last().unwrap().observed, Some(1.5));
    }
}
