//! The paper's Section 5 measurements, as named constants.
//!
//! Every constant cites the paper location it comes from. These are the
//! quantities the paper's own event-based simulator consumes (§6.2: "The
//! simulated CPU behaves as given by the base measurements from
//! Section 5"); our simulator consumes the same ones, which is what makes
//! the hardware substitution sound.

/// Voltage-change delay on the Intel Core i9-9900K, in µs (Fig. 8: mean
/// 350 µs, σ = 22, max 379 µs over 20 repetitions).
pub const I9_VOLT_DELAY_US: f64 = 350.0;
/// Standard deviation of [`I9_VOLT_DELAY_US`].
pub const I9_VOLT_DELAY_SIGMA_US: f64 = 22.0;

/// Frequency-change delay on the i9-9900K, in µs (Fig. 9: 22 µs, σ = 0.21,
/// max 24.8 µs). All cores stall for the duration — single clock domain.
pub const I9_FREQ_DELAY_US: f64 = 22.0;
/// Standard deviation of [`I9_FREQ_DELAY_US`].
pub const I9_FREQ_DELAY_SIGMA_US: f64 = 0.21;

/// Frequency-change delay on the AMD Ryzen 7 7700X, in µs (Fig. 10:
/// 668 µs, σ = 292). The core does not stall.
pub const AMD_FREQ_DELAY_US: f64 = 668.0;
/// Standard deviation of [`AMD_FREQ_DELAY_US`].
pub const AMD_FREQ_DELAY_SIGMA_US: f64 = 292.0;

/// Voltage-change delay on the Intel Xeon Silver 4208, in µs (Fig. 11 /
/// §5.2: 335 µs, n = 98).
pub const XEON_VOLT_DELAY_US: f64 = 335.0;
/// Frequency-change delay on the Xeon 4208, in µs (31 µs, during which the
/// core stalls for 27 µs).
pub const XEON_FREQ_DELAY_US: f64 = 31.0;
/// Core stall during the Xeon frequency change, in µs.
pub const XEON_FREQ_STALL_US: f64 = 27.0;

/// `#DO`-style exception entry delay on Intel (i9-9900K), in µs (§5.3,
/// measured with `UD2`: 0.34 µs).
pub const INTEL_EXCEPTION_DELAY_US: f64 = 0.34;
/// Exception entry delay on AMD (7700X), in µs (§5.3: 0.11 µs).
pub const AMD_EXCEPTION_DELAY_US: f64 = 0.11;
/// User-space emulation round trip on Intel, in µs (§5.3: 0.77 µs —
/// exception entry, return to mapped emulation code, re-entry, return).
pub const INTEL_EMULATION_CALL_US: f64 = 0.77;
/// User-space emulation round trip on AMD, in µs (§5.3: 0.27 µs).
pub const AMD_EMULATION_CALL_US: f64 = 0.27;

/// i9-9900K core voltage at 4 GHz, in mV (Fig. 13 / §5.6).
pub const I9_VOLT_AT_4GHZ_MV: f64 = 991.0;
/// i9-9900K core voltage at 5 GHz, in mV (§5.6: 1.174 V).
pub const I9_VOLT_AT_5GHZ_MV: f64 = 1174.0;
/// Gradient of the i9-9900K DVFS curve between 4 and 5 GHz, mV per GHz.
pub const I9_CURVE_GRADIENT_MV_PER_GHZ: f64 = 183.0;

/// Aging guardband of the i9-9900K, in mV (§5.6: 5 GHz · 15 % · 183 mV/GHz).
pub const AGING_GUARDBAND_MV: f64 = 137.0;
/// Aging guardband as a fraction of supply voltage (§5.6: ≈ 12 %).
pub const AGING_GUARDBAND_FRACTION: f64 = 0.12;
/// FinFET propagation-delay degradation over 10 years at >100 °C (§2.2/§5.6).
pub const AGING_DELAY_DEGRADATION_10Y: f64 = 0.15;
/// Temperature guardband, in mV (§5.7: 35 mV between 50 °C and 88 °C).
pub const TEMPERATURE_GUARDBAND_MV: f64 = 35.0;
/// Temperature guardband as a fraction of the 991 mV supply at 4 GHz (§5.7).
pub const TEMPERATURE_GUARDBAND_FRACTION: f64 = 0.035;

/// Max undervolt at 50 °C core temperature on the i9-9900K, mV (Table 3).
pub const MAX_UNDERVOLT_AT_50C_MV: f64 = -90.0;
/// Max undervolt at 88 °C core temperature on the i9-9900K, mV (Table 3).
pub const MAX_UNDERVOLT_AT_88C_MV: f64 = -55.0;

/// The conservative undervolting margin from instruction-voltage variation
/// alone, in mV (§3.1: average 70 mV over the CPUs of Murdoch/Kogler).
pub const INSTR_VARIATION_OFFSET_MV: f64 = -70.0;
/// The combined offset with 20 % of the aging guardband, in mV (§3.1:
/// −70 mV − 0.2 · 137 mV ≈ −97 mV).
pub const COMBINED_OFFSET_MV: f64 = -97.0;

/// One row of Table 2: SPEC CPU2017 score, package power and mean frequency
/// response to an undervolt offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// CPU name as printed in the paper.
    pub cpu: &'static str,
    /// Voltage offset in mV (negative = undervolt).
    pub offset_mv: f64,
    /// SPEC CPU2017 score change, fractional (+0.038 = +3.8 %).
    pub score: f64,
    /// Package power change, fractional.
    pub power: f64,
    /// Mean core frequency change, fractional.
    pub freq: f64,
    /// Efficiency change, fractional (paper: 1 / (Δduration · Δpower)).
    pub efficiency: f64,
}

/// The paper's Table 2 (average SPEC CPU2017 response to undervolting).
pub const TABLE2: [Table2Row; 6] = [
    Table2Row {
        cpu: "i5-1035G1",
        offset_mv: -70.0,
        score: 0.060,
        power: -0.001,
        freq: 0.085,
        efficiency: 0.061,
    },
    Table2Row {
        cpu: "i5-1035G1",
        offset_mv: -97.0,
        score: 0.079,
        power: -0.005,
        freq: 0.120,
        efficiency: 0.084,
    },
    Table2Row {
        cpu: "i9-9900K",
        offset_mv: -70.0,
        score: 0.022,
        power: -0.072,
        freq: 0.026,
        efficiency: 0.100,
    },
    Table2Row {
        cpu: "i9-9900K",
        offset_mv: -97.0,
        score: 0.038,
        power: -0.160,
        freq: 0.033,
        efficiency: 0.230,
    },
    Table2Row {
        cpu: "7700X",
        offset_mv: -70.0,
        score: 0.014,
        power: -0.098,
        freq: 0.018,
        efficiency: 0.120,
    },
    Table2Row {
        cpu: "7700X",
        offset_mv: -97.0,
        score: 0.019,
        power: -0.150,
        freq: 0.018,
        efficiency: 0.200,
    },
];

/// Mean SPEC CPU2017 package power of the i9-9900K at stock voltage, W
/// (Fig. 12, right axis: ≈ 93 W at offset 0).
pub const I9_SPEC_MEAN_POWER_W: f64 = 93.0;
/// Mean SPEC CPU2017 core frequency of the i9-9900K at stock voltage, GHz
/// (Fig. 12: ≈ 4.5 GHz).
pub const I9_SPEC_MEAN_FREQ_GHZ: f64 = 4.5;

/// Fraction of instructions that are IMUL in 525.x264_r (§6.1: 0.99 %).
pub const X264_IMUL_FRACTION: f64 = 0.0099;
/// Average IMUL fraction over the other SPEC benchmarks (§6.1: 0.07 %).
pub const SPEC_AVG_IMUL_FRACTION: f64 = 0.0007;
/// SPEC-average distance between infrequent faultable instructions
/// (§1: one per ~5 × 10⁹ instructions).
pub const SPEC_AVG_FAULTABLE_GAP: f64 = 5.0e9;
/// IMUL occurs as frequently as every 560 instructions in the worst case
/// (§1).
pub const IMUL_MIN_GAP: f64 = 560.0;

/// Operating-strategy parameters of Table 7 for CPUs 𝒜 and 𝒞.
pub mod params_intel {
    /// Deadline p_dl, µs.
    pub const P_DL_US: f64 = 30.0;
    /// Look-back time span p_ts, µs.
    pub const P_TS_US: f64 = 450.0;
    /// Max exception count p_ec within p_ts.
    pub const P_EC: u32 = 3;
    /// Deadline factor p_df applied when thrashing is detected.
    pub const P_DF: f64 = 14.0;
}

/// Operating-strategy parameters of Table 7 for CPU ℬ.
pub mod params_amd {
    /// Deadline p_dl, µs.
    pub const P_DL_US: f64 = 700.0;
    /// Look-back time span p_ts, µs.
    pub const P_TS_US: f64 = 14_000.0;
    /// Max exception count p_ec within p_ts.
    pub const P_EC: u32 = 4;
    /// Deadline factor p_df applied when thrashing is detected.
    pub const P_DF: f64 = 9.0;
}

/// Table 4: performance impact of compiling without SSE/AVX, fractional.
/// `(benchmark, i9_9900k, ryzen_7700x)`.
pub const TABLE4_NO_SIMD: [(&str, f64, f64); 8] = [
    ("fprate", -0.041, -0.059),
    ("intrate", 0.005, 0.026),
    ("508.namd", -0.22, -0.35),
    ("521.wrf", -0.014, -0.053),
    ("538.imagick", -0.12, -0.090),
    ("554.roms", -0.033, -0.19),
    ("525.x264", 0.070, 0.22),
    ("548.exchange2", 0.077, 0.068),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_offset_is_variation_plus_aging_fifth() {
        let combined = INSTR_VARIATION_OFFSET_MV - 0.2 * AGING_GUARDBAND_MV;
        assert!((combined - COMBINED_OFFSET_MV).abs() < 0.5, "{combined}");
    }

    #[test]
    fn aging_guardband_consistency() {
        // §5.6: 5 GHz · 15 % · 183 mV/GHz = 137 mV.
        let gb = 5.0 * AGING_DELAY_DEGRADATION_10Y * I9_CURVE_GRADIENT_MV_PER_GHZ;
        assert!((gb - AGING_GUARDBAND_MV).abs() < 1.0, "{gb}");
    }

    #[test]
    fn temperature_guardband_consistency() {
        // Table 3: −90 mV at 50 °C vs −55 mV at 88 °C → 35 mV difference,
        // 3.5 % of the 991 mV supply at 4 GHz.
        let diff = MAX_UNDERVOLT_AT_88C_MV - MAX_UNDERVOLT_AT_50C_MV;
        assert!((diff - TEMPERATURE_GUARDBAND_MV).abs() < 0.1);
        let frac = TEMPERATURE_GUARDBAND_MV / I9_VOLT_AT_4GHZ_MV;
        assert!((frac - TEMPERATURE_GUARDBAND_FRACTION).abs() < 0.002);
    }

    #[test]
    fn i9_curve_gradient_consistency() {
        let grad = I9_VOLT_AT_5GHZ_MV - I9_VOLT_AT_4GHZ_MV;
        assert!((grad - I9_CURVE_GRADIENT_MV_PER_GHZ).abs() < 1.0, "{grad}");
    }

    #[test]
    fn table2_efficiency_is_consistent_with_score_and_power() {
        // Efficiency = 1 / (Δduration · Δpower) − 1
        //            = (1 + score) / (1 + power) − 1.
        for row in TABLE2 {
            let eff = (1.0 + row.score) / (1.0 + row.power) - 1.0;
            // The paper rounds aggressively (two significant digits); allow
            // a generous tolerance.
            assert!(
                (eff - row.efficiency).abs() < 0.02,
                "{} @ {} mV: derived {eff:.3} vs printed {:.3}",
                row.cpu,
                row.offset_mv,
                row.efficiency
            );
        }
    }
}
