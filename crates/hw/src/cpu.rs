//! Assembled CPU models 𝒜, ℬ, 𝒞 (§6.2) and the derived operating points.
//!
//! The trace-driven simulator needs, per CPU:
//!
//! * the DVFS-domain layout (single shared domain on the i9-9900K,
//!   per-core frequency domains on the 7700X, fully per-core p-states on
//!   the Xeon 4208);
//! * the transition delays of §5.2–5.3;
//! * the relative performance and power of the three operating points of
//!   Fig. 4 — the efficient curve `E`, the conservative-by-frequency point
//!   `C_f`, and the conservative-by-voltage point `C_V`.

use crate::delays::TransitionDelays;
use crate::power::PowerModel;
use crate::pstate::DvfsCurve;
use crate::undervolt::SteadyStateModel;

/// Which evaluated CPU a model represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuKind {
    /// 𝒜 — Intel Core i9-9900K.
    IntelI9_9900K,
    /// ℬ — AMD Ryzen 7 7700X.
    AmdRyzen7700X,
    /// 𝒞 — Intel Xeon Silver 4208.
    IntelXeon4208,
    /// The i5-1035G1 of Table 2 (steady-state only; not trace-simulated).
    IntelI5_1035G1,
}

/// DVFS-domain granularity (§6.2, "Simulated CPUs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainLayout {
    /// One frequency and voltage domain shared by all cores (𝒜): a curve
    /// switch on any core drags every core along.
    SharedAll,
    /// Per-core frequency domains but one voltage domain (ℬ): only
    /// frequency switching is core-local.
    PerCoreFreq,
    /// Per-core frequency *and* voltage domains (𝒞, Intel PCPS): fully
    /// core-local p-state changes.
    PerCorePState,
}

/// The evaluated undervolt levels of §3.1/§6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UndervoltLevel {
    /// −70 mV: the instruction-voltage-variation margin alone.
    Mv70,
    /// −97 mV: −70 mV plus 20 % of the 137 mV aging guardband.
    Mv97,
}

impl UndervoltLevel {
    /// The voltage offset in mV (negative).
    pub fn offset_mv(self) -> f64 {
        match self {
            UndervoltLevel::Mv70 => -70.0,
            UndervoltLevel::Mv97 => -97.0,
        }
    }

    /// Both evaluated levels.
    pub const ALL: [UndervoltLevel; 2] = [UndervoltLevel::Mv70, UndervoltLevel::Mv97];
}

impl core::fmt::Display for UndervoltLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} mV", self.offset_mv())
    }
}

/// Relative performance and power of an operating point, normalised to the
/// conservative curve at nominal voltage (`C_V` ≡ `{1.0, 1.0}`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Instruction throughput relative to `C_V`.
    pub perf: f64,
    /// Package power relative to `C_V`.
    pub power: f64,
}

/// A complete CPU model consumed by the trace-driven simulator.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Which CPU this is.
    pub kind: CpuKind,
    /// Marketing name, as the paper prints it.
    pub name: &'static str,
    /// DVFS-domain layout.
    pub domains: DomainLayout,
    /// Measured transition delays.
    pub delays: TransitionDelays,
    /// Steady-state undervolt response model.
    pub steady: SteadyStateModel,
    /// Exponent relating frequency to throughput when running *below* the
    /// base frequency on `C_f` (well below 1: memory-bound phases do not
    /// slow down with the core clock, and the `C_f` dwell is short enough
    /// that out-of-order buffers smooth the dip).
    pub freq_perf_exponent: f64,
}

impl CpuModel {
    /// CPU 𝒜 — Intel Core i9-9900K: single shared DVFS domain.
    pub fn i9_9900k() -> Self {
        CpuModel {
            kind: CpuKind::IntelI9_9900K,
            name: "Intel Core i9-9900K",
            domains: DomainLayout::SharedAll,
            delays: TransitionDelays::i9_9900k(),
            steady: SteadyStateModel::i9_9900k(),
            freq_perf_exponent: 0.6,
        }
    }

    /// CPU ℬ — AMD Ryzen 7 7700X: per-core frequency domains.
    pub fn ryzen_7700x() -> Self {
        CpuModel {
            kind: CpuKind::AmdRyzen7700X,
            name: "AMD Ryzen 7 7700X",
            domains: DomainLayout::PerCoreFreq,
            delays: TransitionDelays::ryzen_7700x(),
            steady: SteadyStateModel::ryzen_7700x(),
            freq_perf_exponent: 0.6,
        }
    }

    /// CPU 𝒞 — Intel Xeon Silver 4208: per-core p-states (PCPS).
    pub fn xeon_4208() -> Self {
        CpuModel {
            kind: CpuKind::IntelXeon4208,
            name: "Intel Xeon Silver 4208",
            domains: DomainLayout::PerCorePState,
            delays: TransitionDelays::xeon_4208(),
            steady: SteadyStateModel::xeon_4208(),
            freq_perf_exponent: 0.6,
        }
    }

    /// The i5-1035G1 (Table 2 comparison only).
    pub fn i5_1035g1() -> Self {
        CpuModel {
            kind: CpuKind::IntelI5_1035G1,
            name: "Intel Core i5-1035G1",
            domains: DomainLayout::SharedAll,
            delays: TransitionDelays::i9_9900k(),
            steady: SteadyStateModel::i5_1035g1(),
            freq_perf_exponent: 0.6,
        }
    }

    /// The conservative DVFS curve.
    pub fn curve(&self) -> &DvfsCurve {
        &self.steady.curve
    }

    /// The package power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.steady.power
    }

    /// Operating point `C_V`: conservative curve by definition of the
    /// normalisation.
    pub fn point_cv(&self) -> OperatingPoint {
        OperatingPoint {
            perf: 1.0,
            power: 1.0,
        }
    }

    /// Operating point `E`: the efficient curve at `level`. Performance and
    /// power come from the steady-state undervolt response (Table 2).
    pub fn point_e(&self, level: UndervoltLevel) -> OperatingPoint {
        let r = self.steady.response(level.offset_mv());
        OperatingPoint {
            perf: 1.0 + r.score,
            power: 1.0 + r.power,
        }
    }

    /// Operating point `C_f`: conservative *by frequency* — the voltage
    /// stays at the efficient level but the clock drops until the
    /// conservative curve is satisfied (Fig. 4). Cheap to reach (frequency
    /// change only), very low power, reduced performance.
    pub fn point_cf(&self, level: UndervoltLevel) -> OperatingPoint {
        let curve = self.curve();
        let f0 = self.steady.base_freq_ghz;
        let v_eff = curve.voltage_at(f0) + level.offset_mv();
        let f_cf = curve.max_freq_at_voltage(v_eff);
        let freq_ratio = f_cf / f0;

        let pm = self.power_model();
        let p0 = pm.package_power(curve.voltage_at(f0), f0);
        let p_cf = pm.package_power(v_eff, f_cf);

        OperatingPoint {
            perf: freq_ratio.powf(self.freq_perf_exponent),
            power: p_cf / p0,
        }
    }

    /// `#DO` exception entry delay.
    pub fn exception_delay(&self) -> suit_isa::SimDuration {
        self.delays.exception()
    }

    /// Emulation round-trip delay (two kernel transitions, §5.3).
    pub fn emulation_call_delay(&self) -> suit_isa::SimDuration {
        self.delays.emulation_call()
    }

    /// All three trace-simulated CPUs (𝒜, ℬ, 𝒞).
    pub fn evaluated() -> [CpuModel; 3] {
        [Self::i9_9900k(), Self::ryzen_7700x(), Self::xeon_4208()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_layouts_match_paper() {
        assert_eq!(CpuModel::i9_9900k().domains, DomainLayout::SharedAll);
        assert_eq!(CpuModel::ryzen_7700x().domains, DomainLayout::PerCoreFreq);
        assert_eq!(CpuModel::xeon_4208().domains, DomainLayout::PerCorePState);
    }

    #[test]
    fn e_point_beats_cv_on_both_axes_for_i9() {
        let cpu = CpuModel::i9_9900k();
        for level in UndervoltLevel::ALL {
            let e = cpu.point_e(level);
            assert!(e.perf >= 1.0, "E must not be slower than C_V");
            assert!(e.power < 1.0, "E must draw less power than C_V");
        }
    }

    #[test]
    fn cf_point_is_slow_but_frugal() {
        let cpu = CpuModel::i9_9900k();
        for level in UndervoltLevel::ALL {
            let e = cpu.point_e(level);
            let cf = cpu.point_cf(level);
            assert!(cf.perf < e.perf, "C_f must be slower than E");
            assert!(cf.perf < 1.0, "C_f must be slower than C_V");
            assert!(
                cf.power < e.power,
                "C_f stays at low voltage *and* low frequency → least power"
            );
        }
    }

    #[test]
    fn deeper_undervolt_means_bigger_spread() {
        let cpu = CpuModel::xeon_4208();
        let e70 = cpu.point_e(UndervoltLevel::Mv70);
        let e97 = cpu.point_e(UndervoltLevel::Mv97);
        assert!(e97.power < e70.power);
        assert!(e97.perf >= e70.perf);
    }

    #[test]
    fn xeon_shares_i9_steady_state() {
        // §5.4: Intel does not allow undervolting the Xeon 4208; the paper
        // transfers the i9 response. Delays and domains still differ.
        let a = CpuModel::i9_9900k();
        let c = CpuModel::xeon_4208();
        assert_eq!(a.steady, c.steady);
        assert_ne!(a.delays, c.delays);
    }

    #[test]
    fn undervolt_level_offsets() {
        assert_eq!(UndervoltLevel::Mv70.offset_mv(), -70.0);
        assert_eq!(UndervoltLevel::Mv97.offset_mv(), -97.0);
        assert_eq!(format!("{}", UndervoltLevel::Mv97), "-97 mV");
    }
}
