//! P-state tables and DVFS curves (Fig. 13, §2.4, §3.2).
//!
//! A DVFS curve is a set of vendor-defined (frequency, voltage) pairs that
//! guarantee stable operation. SUIT adds a second, *efficient* curve
//! obtained by excluding the faultable instruction set, which lowers the
//! required voltage at every frequency by the undervolt offset (§3.2).
//!
//! The concrete numbers model the Intel Core i9-9900K of Fig. 13: a linear
//! region with gradient 183 mV/GHz anchored at 991 mV @ 4 GHz, flattening
//! toward a ~0.8 V floor at low frequencies (the shape visible in the
//! figure).

use crate::measured;

/// One vendor-defined p-state: a frequency/voltage pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PState {
    /// Core clock frequency in GHz.
    pub freq_ghz: f64,
    /// Core supply voltage in mV.
    pub voltage_mv: f64,
}

/// A DVFS curve: p-states ordered by ascending frequency, with
/// interpolation between them.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsCurve {
    points: Vec<PState>,
}

impl DvfsCurve {
    /// Builds a curve from p-states.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, or if frequencies are not
    /// strictly increasing, or if voltages ever decrease with frequency
    /// (a physically impossible curve).
    pub fn new(points: Vec<PState>) -> Self {
        assert!(
            points.len() >= 2,
            "a DVFS curve needs at least two p-states"
        );
        for w in points.windows(2) {
            assert!(
                w[1].freq_ghz > w[0].freq_ghz,
                "p-state frequencies must be strictly increasing"
            );
            assert!(
                w[1].voltage_mv >= w[0].voltage_mv,
                "voltage cannot decrease with frequency"
            );
        }
        DvfsCurve { points }
    }

    /// The conservative DVFS curve of the modelled i9-9900K (Fig. 13):
    /// voltage floor ~0.8 V below ~1.5 GHz, then rising to 1.174 V at 5 GHz
    /// with the measured 183 mV/GHz gradient in the 4–5 GHz region.
    pub fn i9_9900k() -> Self {
        // The linear segment anchored per §5.6; the low-frequency points
        // follow the flattening visible in Fig. 13.
        DvfsCurve::new(vec![
            PState {
                freq_ghz: 1.0,
                voltage_mv: 800.0,
            },
            PState {
                freq_ghz: 1.5,
                voltage_mv: 805.0,
            },
            PState {
                freq_ghz: 2.0,
                voltage_mv: 830.0,
            },
            PState {
                freq_ghz: 2.5,
                voltage_mv: 860.0,
            },
            PState {
                freq_ghz: 3.0,
                voltage_mv: 900.0,
            },
            PState {
                freq_ghz: 3.5,
                voltage_mv: 944.0,
            },
            PState {
                freq_ghz: 4.0,
                voltage_mv: measured::I9_VOLT_AT_4GHZ_MV,
            },
            PState {
                freq_ghz: 4.5,
                voltage_mv: 1082.0,
            },
            PState {
                freq_ghz: 5.0,
                voltage_mv: measured::I9_VOLT_AT_5GHZ_MV,
            },
        ])
    }

    /// The p-states, ascending by frequency.
    pub fn points(&self) -> &[PState] {
        &self.points
    }

    /// Lowest supported frequency, GHz.
    pub fn min_freq_ghz(&self) -> f64 {
        self.points.first().unwrap().freq_ghz
    }

    /// Highest supported frequency, GHz.
    pub fn max_freq_ghz(&self) -> f64 {
        self.points.last().unwrap().freq_ghz
    }

    /// The stable voltage at `freq_ghz`, linearly interpolated between
    /// p-states and clamped to the end points.
    pub fn voltage_at(&self, freq_ghz: f64) -> f64 {
        let pts = &self.points;
        if freq_ghz <= pts[0].freq_ghz {
            return pts[0].voltage_mv;
        }
        if freq_ghz >= pts[pts.len() - 1].freq_ghz {
            return pts[pts.len() - 1].voltage_mv;
        }
        for w in pts.windows(2) {
            if freq_ghz <= w[1].freq_ghz {
                let t = (freq_ghz - w[0].freq_ghz) / (w[1].freq_ghz - w[0].freq_ghz);
                return w[0].voltage_mv + t * (w[1].voltage_mv - w[0].voltage_mv);
            }
        }
        unreachable!("interpolation covers the full range")
    }

    /// The highest frequency stable at `voltage_mv` on this curve
    /// (the 𝐶𝑓 switching target of Fig. 4: keep the voltage, drop the
    /// frequency until the conservative curve is satisfied).
    pub fn max_freq_at_voltage(&self, voltage_mv: f64) -> f64 {
        let pts = &self.points;
        if voltage_mv >= pts[pts.len() - 1].voltage_mv {
            return pts[pts.len() - 1].freq_ghz;
        }
        if voltage_mv <= pts[0].voltage_mv {
            return pts[0].freq_ghz;
        }
        for w in pts.windows(2).rev() {
            if voltage_mv >= w[0].voltage_mv {
                let span = w[1].voltage_mv - w[0].voltage_mv;
                if span <= f64::EPSILON {
                    return w[1].freq_ghz;
                }
                let t = (voltage_mv - w[0].voltage_mv) / span;
                return w[0].freq_ghz + t * (w[1].freq_ghz - w[0].freq_ghz);
            }
        }
        pts[0].freq_ghz
    }

    /// Derives the *efficient* DVFS curve of §3.2: the same frequencies at
    /// `offset_mv` lower voltage (offset is negative for an undervolt).
    /// This is the curve the vendor determines by excluding the faultable
    /// instruction set.
    pub fn with_offset(&self, offset_mv: f64) -> DvfsCurve {
        DvfsCurve {
            points: self
                .points
                .iter()
                .map(|p| PState {
                    freq_ghz: p.freq_ghz,
                    voltage_mv: p.voltage_mv + offset_mv,
                })
                .collect(),
        }
    }

    /// The safe-voltage curve for `IMUL` after increasing its latency from
    /// 3 to 4 cycles (§6.9, the "Modified IMUL" plot of Fig. 13).
    ///
    /// One extra pipeline stage gives each stage 4/3 of the clock period,
    /// which is timing-equivalent to running the original 3-stage datapath
    /// at three quarters of the frequency — so the safe voltage at `f` is
    /// the conservative voltage at `0.75·f`. At 5 GHz this yields the
    /// ~220 mV reduction the paper reports; at low frequencies, where the
    /// curve flattens, the reduction is negligible (also as reported).
    pub fn modified_imul(&self) -> DvfsCurve {
        DvfsCurve {
            points: self
                .points
                .iter()
                .map(|p| PState {
                    freq_ghz: p.freq_ghz,
                    voltage_mv: self.voltage_at(p.freq_ghz * 0.75),
                })
                .collect(),
        }
    }

    /// The linear-region gradient in mV/GHz between two frequencies.
    pub fn gradient_mv_per_ghz(&self, f0: f64, f1: f64) -> f64 {
        assert!(f1 > f0, "f1 must exceed f0");
        (self.voltage_at(f1) - self.voltage_at(f0)) / (f1 - f0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i9_curve_matches_measured_anchors() {
        let c = DvfsCurve::i9_9900k();
        assert_eq!(c.voltage_at(4.0), measured::I9_VOLT_AT_4GHZ_MV);
        assert_eq!(c.voltage_at(5.0), measured::I9_VOLT_AT_5GHZ_MV);
        // §5.6: gradient between 4 and 5 GHz is 183 mV/GHz.
        let g = c.gradient_mv_per_ghz(4.0, 5.0);
        assert!(
            (g - measured::I9_CURVE_GRADIENT_MV_PER_GHZ).abs() < 1.0,
            "{g}"
        );
    }

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let c = DvfsCurve::i9_9900k();
        let mut last = 0.0;
        let mut f = 0.5;
        while f <= 5.5 {
            let v = c.voltage_at(f);
            assert!(v >= last, "voltage decreased at {f} GHz");
            last = v;
            f += 0.05;
        }
        assert_eq!(c.voltage_at(0.1), c.voltage_at(1.0));
        assert_eq!(c.voltage_at(9.0), c.voltage_at(5.0));
    }

    #[test]
    fn max_freq_at_voltage_inverts_voltage_at() {
        let c = DvfsCurve::i9_9900k();
        for f in [1.2, 2.2, 3.3, 4.4, 4.9] {
            let v = c.voltage_at(f);
            let back = c.max_freq_at_voltage(v);
            assert!((back - f).abs() < 1e-9, "{f} -> {v} -> {back}");
        }
    }

    #[test]
    fn cf_switch_drops_frequency_by_offset_over_gradient() {
        // Switching E → C_f at 4.5 GHz with a −97 mV offset drops the
        // frequency by at least 97 / 183 ≈ 0.53 GHz (more where the curve
        // is shallower than the 4–5 GHz gradient, as in Fig. 13's convex
        // shape).
        let c = DvfsCurve::i9_9900k();
        let v_eff = c.voltage_at(4.5) - 97.0;
        let f_cf = c.max_freq_at_voltage(v_eff);
        let drop = 4.5 - f_cf;
        assert!(drop >= 97.0 / 183.0 - 1e-9, "drop {drop} GHz");
        assert!(drop < 0.8, "drop {drop} GHz implausibly large");
    }

    #[test]
    fn modified_imul_reduction_matches_section_6_9() {
        // §6.9: at 5 GHz the 4-cycle IMUL tolerates ≈ 220 mV less voltage.
        let c = DvfsCurve::i9_9900k();
        let m = c.modified_imul();
        let red = c.voltage_at(5.0) - m.voltage_at(5.0);
        assert!((190.0..250.0).contains(&red), "reduction {red} mV");
        // At low frequencies the reduction is negligible (flat region).
        let red_low = c.voltage_at(1.2) - m.voltage_at(1.2);
        assert!(red_low < 10.0, "low-freq reduction {red_low} mV");
    }

    #[test]
    fn efficient_curve_is_uniformly_offset() {
        let c = DvfsCurve::i9_9900k();
        let e = c.with_offset(-70.0);
        for f in [1.0, 2.5, 4.0, 5.0] {
            assert!((c.voltage_at(f) - e.voltage_at(f) - 70.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_points() {
        let _ = DvfsCurve::new(vec![
            PState {
                freq_ghz: 2.0,
                voltage_mv: 900.0,
            },
            PState {
                freq_ghz: 1.0,
                voltage_mv: 800.0,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        let _ = DvfsCurve::new(vec![PState {
            freq_ghz: 2.0,
            voltage_mv: 900.0,
        }]);
    }
}
