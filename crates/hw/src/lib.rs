//! # suit-hw
//!
//! Hardware behaviour models for the SUIT reproduction.
//!
//! The paper grounds its system-level simulation in measurements of three
//! real CPUs (§5). We have none of that hardware, so this crate provides
//! *calibrated models* seeded with the paper's own measured constants —
//! exactly the quantities the paper's event-based simulator consumes:
//!
//! * [`measured`] — every number Section 5 reports, as named constants with
//!   paper citations.
//! * [`pstate`] — p-state tables and DVFS curves (Fig. 13), including the
//!   efficient curve construction of §3.2 and the modified-IMUL safe-voltage
//!   curve of §6.9.
//! * [`delays`] — voltage/frequency transition-delay models with settle
//!   curves and stall windows (Figs. 8–11) and exception/emulation-call
//!   delays (§5.3).
//! * [`power`] — the CMOS package power model (P ∝ C·V²·f plus static
//!   leakage) behind the efficiency numbers.
//! * [`undervolt`] — the steady-state undervolting response (Fig. 12,
//!   Table 2): how score, power and sustained frequency react to a voltage
//!   offset under a TDP limit.
//! * [`guardband`] — aging (§5.6) and temperature (§5.7) guardband models.
//! * [`cpu`] — the assembled CPU models 𝒜 (i9-9900K), ℬ (Ryzen 7 7700X)
//!   and 𝒞 (Xeon Silver 4208), plus the i5-1035G1 of Table 2.
//! * [`thermal`] — a first-order RC package thermal model behind Table 3's
//!   fan-speed → temperature → safe-offset relationship.
//! * [`msrs`] — bit-exact encoders/decoders for the software interfaces
//!   the paper measured through: the `MSR 0x150` overclocking mailbox,
//!   `IA32_PERF_STATUS`/`IA32_PERF_CTL`, `APERF`/`MPERF`, and the RAPL
//!   energy counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod delays;
pub mod guardband;
pub mod measured;
pub mod msrs;
pub mod power;
pub mod pstate;
pub mod thermal;
pub mod undervolt;

pub use cpu::{CpuKind, CpuModel, DomainLayout, OperatingPoint, UndervoltLevel};
pub use delays::{DelayTable, PointKind, TransitionDelays};
pub use pstate::{DvfsCurve, PState};
