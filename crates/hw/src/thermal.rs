//! Transient thermal model (§5.7 dynamics behind Table 3).
//!
//! The paper steers core temperature through fan speed and reads off the
//! maximum safe undervolt at each temperature. The steady-state anchors
//! live in [`crate::guardband`]; this module adds the *dynamics*: a
//! first-order RC thermal model
//!
//! ```text
//! C_th · dT/dt = P − (T − T_amb) / R_th(fan)
//! ```
//!
//! with the thermal resistance a function of fan speed, calibrated so the
//! steady states reproduce Table 3 (93 W → 50 °C at 1800 RPM, → 88 °C at
//! 300 RPM). This is what a SUIT governor would integrate to decide how
//! much temperature guardband is momentarily available (§3.1's
//! "well-controlled core temperatures").

use suit_isa::SimDuration;

use crate::guardband::max_undervolt_at_temp_mv;

/// Ambient temperature used throughout, °C (the paper's room ≈ 25 °C).
pub const AMBIENT_C: f64 = 25.0;

/// First-order package thermal model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Thermal capacitance, J/K (package + heatsink mass).
    pub c_th: f64,
    /// Current junction temperature, °C.
    temp_c: f64,
    /// Current fan speed, RPM.
    fan_rpm: f64,
}

impl ThermalModel {
    /// Thermal-throttle limit the i9-9900K must not exceed (§5.7).
    pub const THROTTLE_C: f64 = 90.0;

    /// Creates a model at thermal equilibrium with the ambient.
    pub fn new(fan_rpm: f64) -> Self {
        assert!(fan_rpm > 0.0);
        ThermalModel {
            c_th: 120.0,
            temp_c: AMBIENT_C,
            fan_rpm,
        }
    }

    /// Thermal resistance heatsink→ambient at a fan speed, K/W.
    ///
    /// Calibrated through Table 3's two steady states at 93 W SPEC load:
    /// 1800 RPM → 50 °C ⇒ R = 25/93 ≈ 0.269; 300 RPM → 88 °C ⇒
    /// R = 63/93 ≈ 0.677. Interpolated as `a + b / rpm` (convective
    /// resistance falls with airflow).
    pub fn resistance(fan_rpm: f64) -> f64 {
        assert!(fan_rpm > 0.0);
        // Solve a + b/1800 = 0.2688, a + b/300 = 0.6774.
        let b = (0.6774 - 0.2688) / (1.0 / 300.0 - 1.0 / 1800.0);
        let a = 0.2688 - b / 1800.0;
        (a + b / fan_rpm).max(0.05)
    }

    /// Current junction temperature, °C.
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Sets the fan speed.
    pub fn set_fan_rpm(&mut self, rpm: f64) {
        assert!(rpm > 0.0);
        self.fan_rpm = rpm;
    }

    /// The steady-state temperature this model converges to at `watts`.
    pub fn steady_state_c(&self, watts: f64) -> f64 {
        AMBIENT_C + watts * Self::resistance(self.fan_rpm)
    }

    /// Advances the model by `dt` under `watts` of package power.
    pub fn step(&mut self, dt: SimDuration, watts: f64) {
        assert!(watts >= 0.0);
        let r = Self::resistance(self.fan_rpm);
        let tau = r * self.c_th; // seconds
        let target = AMBIENT_C + watts * r;
        let alpha = 1.0 - (-dt.as_secs_f64() / tau).exp();
        self.temp_c += (target - self.temp_c) * alpha;
    }

    /// Whether the package is at or above the thermal-throttle limit.
    pub fn throttling(&self) -> bool {
        self.temp_c >= Self::THROTTLE_C
    }

    /// The maximum safe undervolt offset at the *current* temperature
    /// (Table 3's relationship): cooler silicon tolerates deeper offsets.
    pub fn max_undervolt_mv(&self) -> f64 {
        max_undervolt_at_temp_mv(self.temp_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_states_reproduce_table3() {
        let hot = ThermalModel::new(300.0);
        let cool = ThermalModel::new(1800.0);
        assert!(
            (hot.steady_state_c(93.0) - 88.0).abs() < 0.5,
            "{}",
            hot.steady_state_c(93.0)
        );
        assert!(
            (cool.steady_state_c(93.0) - 50.0).abs() < 0.5,
            "{}",
            cool.steady_state_c(93.0)
        );
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut m = ThermalModel::new(1800.0);
        for _ in 0..5_000 {
            m.step(SimDuration::from_millis(100), 93.0);
        }
        assert!((m.temperature_c() - m.steady_state_c(93.0)).abs() < 0.2);
    }

    #[test]
    fn heating_is_gradual_not_instant() {
        let mut m = ThermalModel::new(1800.0);
        m.step(SimDuration::from_millis(500), 93.0);
        let t = m.temperature_c();
        assert!(t > AMBIENT_C + 0.05, "must heat: {t}");
        // Far from equilibrium after half a second (τ ≈ 32 s).
        let rise = t - AMBIENT_C;
        let full_rise = m.steady_state_c(93.0) - AMBIENT_C;
        assert!(rise < 0.5 * full_rise, "but not instantly: {t}");
    }

    #[test]
    fn slowing_the_fan_raises_temperature_and_shrinks_the_offset() {
        let mut m = ThermalModel::new(1800.0);
        for _ in 0..5_000 {
            m.step(SimDuration::from_millis(100), 93.0);
        }
        let offset_cool = m.max_undervolt_mv();
        m.set_fan_rpm(300.0);
        for _ in 0..5_000 {
            m.step(SimDuration::from_millis(100), 93.0);
        }
        let offset_hot = m.max_undervolt_mv();
        // Table 3: −90 mV at 50 °C vs −55 mV at 88 °C.
        assert!((offset_cool - (-90.0)).abs() < 2.0, "{offset_cool}");
        assert!((offset_hot - (-55.0)).abs() < 2.0, "{offset_hot}");
        assert!(m.throttling() || m.temperature_c() > 85.0);
    }

    #[test]
    fn idle_package_cools_to_ambient() {
        let mut m = ThermalModel::new(300.0);
        for _ in 0..5_000 {
            m.step(SimDuration::from_millis(100), 93.0);
        }
        assert!(m.temperature_c() > 80.0);
        for _ in 0..20_000 {
            m.step(SimDuration::from_millis(100), 0.0);
        }
        assert!((m.temperature_c() - AMBIENT_C).abs() < 0.5);
        assert!(!m.throttling());
    }

    #[test]
    fn resistance_decreases_with_airflow() {
        assert!(ThermalModel::resistance(300.0) > ThermalModel::resistance(900.0));
        assert!(ThermalModel::resistance(900.0) > ThermalModel::resistance(1800.0));
        assert!(ThermalModel::resistance(100_000.0) >= 0.05, "floor holds");
    }
}
