//! Aging and temperature guardband models (§2.2, §3.1, §5.6, §5.7).
//!
//! Vendors supply CPUs with more voltage than the nominal minimum to cover
//! aging (bias temperature instability, hot-carrier injection) and
//! temperature effects over a 10-year worst-case lifetime. SUIT keeps
//! these guardbands intact in principle, but §3.1 argues that during the
//! first years of a CPU's (shorter, cooler) real deployment a *fraction*
//! of the aging guardband is provably unused and can be borrowed — the
//! extra −27 mV that turns the −70 mV offset into −97 mV.

use crate::measured;
use crate::pstate::DvfsCurve;

/// The aging guardband designed into `curve`: the voltage needed for a
/// `degradation` (15 % over 10 years, §5.6) higher frequency at the top
/// p-state.
///
/// For the i9-9900K curve this evaluates to ≈ 137 mV (5 GHz · 15 % ·
/// 183 mV/GHz), 12 % of the supply voltage.
pub fn aging_guardband_mv(curve: &DvfsCurve) -> f64 {
    let fmax = curve.max_freq_ghz();
    let grad = curve.gradient_mv_per_ghz(fmax - 1.0, fmax);
    fmax * measured::AGING_DELAY_DEGRADATION_10Y * grad
}

/// A model of how much of the aging guardband a deployment actually
/// consumes, so the remainder can be borrowed for undervolting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// Worst-case propagation-delay degradation after
    /// [`DESIGN_LIFETIME_YEARS`](AgingModel::DESIGN_LIFETIME_YEARS) at the
    /// worst-case temperature (0.15 per §5.6).
    pub worst_case_degradation: f64,
    /// Worst-case junction temperature the guardband is designed for, °C.
    pub design_temp_c: f64,
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel {
            worst_case_degradation: measured::AGING_DELAY_DEGRADATION_10Y,
            design_temp_c: 105.0,
        }
    }
}

impl AgingModel {
    /// The design lifetime the guardband covers, years.
    pub const DESIGN_LIFETIME_YEARS: f64 = 10.0;

    /// Fractional propagation-delay degradation after `years` at a core
    /// temperature of `temp_c`.
    ///
    /// BTI-style aging follows a sub-linear power law in time (~t^0.25) and
    /// accelerates with temperature (§3.1: "aging degradation is larger at
    /// higher temperatures"); we model the temperature acceleration as a
    /// doubling per 25 °C toward the design corner.
    pub fn degradation(&self, years: f64, temp_c: f64) -> f64 {
        assert!(years >= 0.0, "years must be non-negative");
        let time_factor = (years / Self::DESIGN_LIFETIME_YEARS).powf(0.25);
        let temp_factor = 2.0f64.powf((temp_c - self.design_temp_c) / 25.0).min(1.0);
        (self.worst_case_degradation * time_factor * temp_factor).min(self.worst_case_degradation)
    }

    /// The fraction of the aging guardband still unused after `years` at
    /// `temp_c` — the share §3.1 proposes to borrow for undervolting.
    pub fn unused_fraction(&self, years: f64, temp_c: f64) -> f64 {
        1.0 - self.degradation(years, temp_c) / self.worst_case_degradation
    }

    /// Millivolts of the aging guardband of `curve` that are safely
    /// borrowable after `years` of deployment at `temp_c`, keeping
    /// `reserve_frac` of the unused share in reserve.
    pub fn borrowable_mv(
        &self,
        curve: &DvfsCurve,
        years: f64,
        temp_c: f64,
        reserve_frac: f64,
    ) -> f64 {
        assert!((0.0..=1.0).contains(&reserve_frac));
        aging_guardband_mv(curve) * self.unused_fraction(years, temp_c) * (1.0 - reserve_frac)
    }
}

/// Temperature model of §5.7 / Table 3: the maximum safe undervolt offset
/// as a function of core temperature, linear through the two measured
/// points (50 °C → −90 mV, 88 °C → −55 mV).
pub fn max_undervolt_at_temp_mv(temp_c: f64) -> f64 {
    let slope =
        (measured::MAX_UNDERVOLT_AT_88C_MV - measured::MAX_UNDERVOLT_AT_50C_MV) / (88.0 - 50.0);
    measured::MAX_UNDERVOLT_AT_50C_MV + slope * (temp_c - 50.0)
}

/// Fan model of Table 3: steady-state core temperature under full SPEC
/// load as a function of fan speed, linear through (1800 RPM, 50 °C) and
/// (300 RPM, 88 °C), clamped to the thermal-throttle limit of 90 °C.
pub fn core_temp_at_fan_rpm(rpm: f64) -> f64 {
    assert!(rpm > 0.0, "fan speed must be positive");
    let slope = (50.0 - 88.0) / (1800.0 - 300.0);
    (88.0 + slope * (rpm - 300.0)).clamp(30.0, 90.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i9_guardband_is_137mv() {
        let gb = aging_guardband_mv(&DvfsCurve::i9_9900k());
        assert!((gb - measured::AGING_GUARDBAND_MV).abs() < 2.0, "{gb}");
    }

    #[test]
    fn degradation_is_zero_at_birth_and_full_at_design_corner() {
        let m = AgingModel::default();
        assert_eq!(m.degradation(0.0, 105.0), 0.0);
        let full = m.degradation(10.0, 105.0);
        assert!((full - 0.15).abs() < 1e-12, "{full}");
        assert!(m.unused_fraction(0.0, 105.0) > 0.999);
        assert!(m.unused_fraction(10.0, 105.0) < 1e-9);
    }

    #[test]
    fn cooler_cpus_age_slower() {
        let m = AgingModel::default();
        assert!(m.degradation(5.0, 60.0) < m.degradation(5.0, 105.0));
        // Degradation never exceeds the design worst case.
        assert!(m.degradation(10.0, 150.0) <= 0.15 + 1e-12);
    }

    #[test]
    fn borrowing_20_percent_of_fresh_guardband_is_27mv() {
        // §3.1: the −97 mV offset = −70 mV + 20 % of the 137 mV guardband.
        let m = AgingModel::default();
        let curve = DvfsCurve::i9_9900k();
        let b = m.borrowable_mv(&curve, 0.0, 60.0, 0.8);
        assert!((b - 27.4).abs() < 1.5, "{b}");
    }

    #[test]
    fn table3_endpoints_reproduce() {
        assert!((max_undervolt_at_temp_mv(50.0) - (-90.0)).abs() < 1e-9);
        assert!((max_undervolt_at_temp_mv(88.0) - (-55.0)).abs() < 1e-9);
        assert!((core_temp_at_fan_rpm(1800.0) - 50.0).abs() < 1e-9);
        assert!((core_temp_at_fan_rpm(300.0) - 88.0).abs() < 1e-9);
    }

    #[test]
    fn hotter_cores_tolerate_less_undervolt() {
        assert!(max_undervolt_at_temp_mv(88.0) > max_undervolt_at_temp_mv(50.0));
        // (Offsets are negative: "greater" means less undervolting room.)
    }
}
