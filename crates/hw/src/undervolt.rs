//! Steady-state undervolting response (Fig. 12, Table 2, §5.4).
//!
//! §5.4's observation: most CPUs are limited by their thermal design power
//! (TDP), so lowering the core voltage both cuts package power *and* lets
//! TDP-throttled phases sustain higher frequencies. The response of a full
//! SPEC CPU2017 run to an undervolt offset is therefore CPU-specific: the
//! 15 W i5-1035G1 converts the headroom almost entirely into frequency,
//! while the i9-9900K mostly banks it as power savings.
//!
//! [`SteadyStateModel`] reproduces this with per-metric response curves:
//! quadratic polynomials `Δ(x) = a·x + b·x²` in the offset magnitude,
//! anchored through the paper's two measured Table 2 points per CPU. The
//! quadratic form is the physically expected one (`P_dyn ∝ V²`, §2.1), the
//! anchors pin the magnitude to the measurements — the same role §5 plays
//! for the paper's own simulator. The package [`PowerModel`] and TDP
//! solver remain available for absolute watts and for the `C_f` operating
//! point.

use crate::measured::{self, Table2Row};
use crate::power::PowerModel;
use crate::pstate::{DvfsCurve, PState};

/// A quadratic response curve `Δ(x) = a·x + b·x²` over the undervolt
/// magnitude `x = |offset_mv|`, fitted through two measured anchors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticFit {
    /// Linear coefficient, per mV.
    pub a: f64,
    /// Quadratic coefficient, per mV².
    pub b: f64,
}

impl QuadraticFit {
    /// Fits through `(x1, y1)` and `(x2, y2)` (and implicitly the origin).
    ///
    /// # Panics
    ///
    /// Panics if `x1` and `x2` are not distinct positive magnitudes.
    pub fn through(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        assert!(x1 > 0.0 && x2 > 0.0 && (x1 - x2).abs() > f64::EPSILON);
        let det = x1 * x2 * x2 - x2 * x1 * x1;
        QuadraticFit {
            a: (y1 * x2 * x2 - y2 * x1 * x1) / det,
            b: (x1 * y2 - x2 * y1) / det,
        }
    }

    /// Evaluates the fit at magnitude `x` (mV).
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x + self.b * x * x
    }
}

/// The modelled response of a full SPEC CPU2017 run to an undervolt offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UndervoltResponse {
    /// Applied core voltage offset, mV (negative = undervolt).
    pub offset_mv: f64,
    /// SPEC score change, fractional.
    pub score: f64,
    /// Package power change, fractional.
    pub power: f64,
    /// Mean core frequency change, fractional.
    pub freq: f64,
    /// Mean package power, W.
    pub power_w: f64,
    /// Mean core frequency, GHz.
    pub freq_ghz: f64,
}

impl UndervoltResponse {
    /// Efficiency change as the paper computes it (§5.4):
    /// `1 / (Δduration · Δpower) − 1 = (1 + score) / (1 + power) − 1`.
    pub fn efficiency(&self) -> f64 {
        (1.0 + self.score) / (1.0 + self.power) - 1.0
    }
}

/// A per-CPU steady-state undervolting model.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyStateModel {
    /// Package power model (absolute watts; also used for `C_f`).
    pub power: PowerModel,
    /// Conservative DVFS curve.
    pub curve: DvfsCurve,
    /// Sustained power limit, W.
    pub tdp_w: f64,
    /// Mean SPEC frequency at stock voltage, GHz.
    pub base_freq_ghz: f64,
    /// Score response fit (non-negative by construction of [`Self::response`]).
    pub score_fit: QuadraticFit,
    /// Power response fit (non-positive by construction).
    pub power_fit: QuadraticFit,
    /// Frequency response fit.
    pub freq_fit: QuadraticFit,
}

impl SteadyStateModel {
    fn from_table2(
        cpu: &str,
        power: PowerModel,
        curve: DvfsCurve,
        tdp_w: f64,
        base_freq_ghz: f64,
    ) -> Self {
        let r70 = table2_row(cpu, -70.0).expect("Table 2 row at -70 mV");
        let r97 = table2_row(cpu, -97.0).expect("Table 2 row at -97 mV");
        SteadyStateModel {
            power,
            curve,
            tdp_w,
            base_freq_ghz,
            score_fit: QuadraticFit::through(70.0, r70.score, 97.0, r97.score),
            power_fit: QuadraticFit::through(70.0, r70.power, 97.0, r97.power),
            freq_fit: QuadraticFit::through(70.0, r70.freq, 97.0, r97.freq),
        }
    }

    /// The Intel Core i9-9900K (Table 2 / Fig. 12).
    pub fn i9_9900k() -> Self {
        Self::from_table2(
            "i9-9900K",
            PowerModel::i9_9900k(),
            DvfsCurve::i9_9900k(),
            95.0,
            measured::I9_SPEC_MEAN_FREQ_GHZ,
        )
    }

    /// The Intel Xeon Silver 4208 (CPU 𝒞). Intel does not allow
    /// undervolting this part (§5.4), so the paper's simulator — and ours —
    /// transfers the i9-9900K response to it; only the transition delays
    /// and domain layout differ.
    pub fn xeon_4208() -> Self {
        Self::i9_9900k()
    }

    /// The AMD Ryzen 7 7700X: high stock power budget, almost no thermal
    /// headroom converted to frequency (Table 2: +1.8 % freq, −15 % power).
    pub fn ryzen_7700x() -> Self {
        let curve = DvfsCurve::new(vec![
            PState {
                freq_ghz: 3.0,
                voltage_mv: 850.0,
            },
            PState {
                freq_ghz: 4.0,
                voltage_mv: 1000.0,
            },
            PState {
                freq_ghz: 4.5,
                voltage_mv: 1100.0,
            },
            PState {
                freq_ghz: 5.0,
                voltage_mv: 1220.0,
            },
            PState {
                freq_ghz: 5.4,
                voltage_mv: 1330.0,
            },
        ]);
        Self::from_table2(
            "7700X",
            PowerModel::calibrated(120.0, 1220.0, 5.0, 0.22, 12.0),
            curve,
            142.0, // PPT
            5.0,
        )
    }

    /// The Intel Core i5-1035G1: a 15 W laptop part pinned at its TDP, so
    /// undervolting converts almost entirely into frequency (Table 2:
    /// +12 % freq, −0.5 % power at −97 mV).
    pub fn i5_1035g1() -> Self {
        let curve = DvfsCurve::new(vec![
            PState {
                freq_ghz: 1.0,
                voltage_mv: 650.0,
            },
            PState {
                freq_ghz: 1.8,
                voltage_mv: 720.0,
            },
            PState {
                freq_ghz: 2.6,
                voltage_mv: 820.0,
            },
            PState {
                freq_ghz: 3.2,
                voltage_mv: 940.0,
            },
            PState {
                freq_ghz: 3.6,
                voltage_mv: 1050.0,
            },
        ]);
        Self::from_table2(
            "i5-1035G1",
            PowerModel::calibrated(15.0, 820.0, 2.6, 0.18, 2.5),
            curve,
            15.0,
            2.6,
        )
    }

    /// Computes the steady-state response to `offset_mv`.
    ///
    /// Score/frequency gains are clamped at ≥ 0 and the power delta at
    /// ≤ 0: an undervolt never hurts either axis in the modelled regime.
    pub fn response(&self, offset_mv: f64) -> UndervoltResponse {
        assert!(offset_mv <= 0.0, "model covers undervolting only");
        let x = -offset_mv;
        let score = self.score_fit.eval(x).max(0.0);
        let power = self.power_fit.eval(x).min(0.0);
        let freq = self.freq_fit.eval(x).max(0.0);

        let v0 = self.curve.voltage_at(self.base_freq_ghz);
        let p0 = self.power.package_power(v0, self.base_freq_ghz);
        UndervoltResponse {
            offset_mv,
            score,
            power,
            freq,
            power_w: p0 * (1.0 + power),
            freq_ghz: self.base_freq_ghz * (1.0 + freq),
        }
    }

    /// Sweeps a list of offsets — the Fig. 12 series.
    pub fn sweep(&self, offsets_mv: &[f64]) -> Vec<UndervoltResponse> {
        offsets_mv.iter().map(|&o| self.response(o)).collect()
    }
}

/// Finds the measured Table 2 row for a CPU and offset, for model
/// validation and the `table2` experiment.
pub fn table2_row(cpu: &str, offset_mv: f64) -> Option<Table2Row> {
    measured::TABLE2
        .iter()
        .find(|r| r.cpu == cpu && (r.offset_mv - offset_mv).abs() < 0.5)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(model: f64, paper: f64, tol: f64, what: &str) {
        assert!(
            (model - paper).abs() <= tol,
            "{what}: model {model:.4} vs paper {paper:.4} (tol {tol})"
        );
    }

    fn check_against_table2(model: &SteadyStateModel, cpu: &str, tol: f64) {
        for offset in [-70.0, -97.0] {
            let r = model.response(offset);
            let paper = table2_row(cpu, offset).unwrap();
            assert_close(r.score, paper.score, tol, &format!("{cpu} {offset} score"));
            assert_close(r.power, paper.power, tol, &format!("{cpu} {offset} power"));
            assert_close(r.freq, paper.freq, tol, &format!("{cpu} {offset} freq"));
            assert_close(
                r.efficiency(),
                paper.efficiency,
                2.0 * tol,
                &format!("{cpu} {offset} efficiency"),
            );
        }
    }

    #[test]
    fn i9_matches_table2() {
        check_against_table2(&SteadyStateModel::i9_9900k(), "i9-9900K", 0.005);
    }

    #[test]
    fn ryzen_matches_table2() {
        check_against_table2(&SteadyStateModel::ryzen_7700x(), "7700X", 0.005);
    }

    #[test]
    fn i5_matches_table2() {
        check_against_table2(&SteadyStateModel::i5_1035g1(), "i5-1035G1", 0.005);
    }

    #[test]
    fn quadratic_fit_passes_through_anchors() {
        let f = QuadraticFit::through(70.0, -0.072, 97.0, -0.160);
        assert!((f.eval(70.0) - (-0.072)).abs() < 1e-12);
        assert!((f.eval(97.0) - (-0.160)).abs() < 1e-12);
        assert_eq!(f.eval(0.0), 0.0);
    }

    #[test]
    fn efficiency_roughly_doubles_from_70_to_97() {
        // §6.3: "the efficiency approximately doubles when decreasing the
        // voltage offset from −70 mV to −97 mV" — the quadratic at work.
        let m = SteadyStateModel::i9_9900k();
        let e70 = m.response(-70.0).efficiency();
        let e97 = m.response(-97.0).efficiency();
        let ratio = e97 / e70;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn response_is_monotone_in_offset() {
        let m = SteadyStateModel::i9_9900k();
        let r = m.sweep(&[0.0, -40.0, -70.0, -97.0]);
        for w in r.windows(2) {
            assert!(w[1].power <= w[0].power, "power must keep falling");
            assert!(w[1].score >= w[0].score, "score must keep rising");
        }
        assert_eq!(r[0].score, 0.0);
        assert_eq!(r[0].power, 0.0);
    }

    #[test]
    fn fig12_power_axis_matches() {
        // Fig. 12: package power falls from ≈93 W to ≈77 W at −97 mV.
        let m = SteadyStateModel::i9_9900k();
        let base = m.response(0.0);
        let r = m.response(-97.0);
        assert!((base.power_w - 93.0).abs() < 2.0, "{:.1} W", base.power_w);
        assert!((r.power_w - 77.0).abs() < 3.0, "{:.1} W", r.power_w);
    }

    #[test]
    #[should_panic(expected = "undervolting only")]
    fn rejects_overvolting() {
        let _ = SteadyStateModel::i9_9900k().response(10.0);
    }
}
