//! Per-instruction minimum-voltage model with process variation.
//!
//! Every instruction class has a *margin*: how far below the conservative
//! curve's voltage the supply can drop before the instruction's datapath
//! misses timing. §2.3: Murdoch et al. saw `IMUL` fault at −100 mV while
//! everything else survived to −250 mV; Kogler et al. measured up to
//! 60 mV+ spread between faultable instructions and strong per-core
//! variation. The margins here are ordered to reproduce Table 1: `IMUL`
//! has the smallest margin (faults first and in the most core/frequency/
//! offset combinations), `VPADDQ` the largest of the faultable set, and
//! non-faultable instructions sit near the −250 mV horizon.

use suit_isa::Opcode;
use suit_rng::SuitRng;
use suit_trace::gen::standard_normal;

/// Mean undervolt margin (mV below the conservative-curve voltage) at
/// which an opcode starts faulting, ordered per Table 1.
pub fn mean_margin_mv(op: Opcode) -> f64 {
    match op {
        Opcode::Imul => 95.0, // faults first (91.2 % of first faults, §4.2)
        Opcode::Vor => 118.0,
        Opcode::Aesenc => 122.0,
        Opcode::Vxor => 122.0,
        Opcode::Vandn => 130.0,
        Opcode::Vand => 132.0,
        Opcode::Vsqrtpd => 136.0,
        Opcode::Vpclmulqdq => 144.0,
        Opcode::Vpsrad => 152.0,
        Opcode::Vpcmp => 158.0,
        Opcode::Vpmax => 162.0,
        Opcode::Vpaddq => 168.0,
        // Non-faultable instructions: stable down to the ≈−250 mV horizon
        // Murdoch et al. report.
        _ => 245.0,
    }
}

/// Width of the fault-onset region, mV: within this band below the
/// threshold, faults are probabilistic and rare (the "very infrequently"
/// onset of §2.3); below it they are certain.
pub const ONSET_WIDTH_MV: f64 = 12.0;

/// One sampled minimum voltage for (core, opcode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VminSample {
    /// The opcode.
    pub opcode: Opcode,
    /// Margin below the conservative curve at which faults begin, mV.
    pub margin_mv: f64,
}

/// A chip instance: per-core, per-opcode fault margins drawn with process
/// variation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipVminModel {
    cores: Vec<Vec<VminSample>>, // [core][opcode-index]
}

impl ChipVminModel {
    /// Samples a chip with `cores` cores. `sigma_mv` is the per-core
    /// process-variation spread (Kogler et al. imply ~10–20 mV); `seed`
    /// makes the chip reproducible.
    pub fn sample(cores: usize, sigma_mv: f64, seed: u64) -> Self {
        assert!(cores >= 1);
        assert!(sigma_mv >= 0.0);
        let mut rng = SuitRng::seed_from_u64(seed);
        // Chip-wide shift (die-to-die variation).
        let chip_shift: f64 = standard_normal(&mut rng) * sigma_mv * 0.7;
        let cores = (0..cores)
            .map(|_| {
                Opcode::ALL
                    .iter()
                    .map(|&op| {
                        let noise = standard_normal(&mut rng) * sigma_mv;
                        VminSample {
                            opcode: op,
                            margin_mv: (mean_margin_mv(op) + chip_shift + noise).max(20.0),
                        }
                    })
                    .collect()
            })
            .collect();
        ChipVminModel { cores }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The margin (mV) below the conservative curve at which `op` begins
    /// to fault on `core`.
    pub fn margin_mv(&self, core: usize, op: Opcode) -> f64 {
        self.cores[core][op.index()].margin_mv
    }

    /// Probability that a single execution of `op` on `core` produces a
    /// silent data error at `offset_mv` (negative) below the conservative
    /// curve voltage.
    ///
    /// Zero above the onset band, ramping quadratically through it
    /// (matching the "faults very infrequently at first" observation),
    /// and 1 below.
    pub fn fault_probability(&self, core: usize, op: Opcode, offset_mv: f64) -> f64 {
        let undervolt = -offset_mv; // positive magnitude
        let threshold = self.margin_mv(core, op);
        if undervolt <= threshold {
            0.0
        } else if undervolt >= threshold + ONSET_WIDTH_MV {
            1.0
        } else {
            let x = (undervolt - threshold) / ONSET_WIDTH_MV;
            x * x
        }
    }

    /// Whether any execution of `op` at `offset_mv` can fault at all.
    pub fn can_fault(&self, core: usize, op: Opcode, offset_mv: f64) -> bool {
        self.fault_probability(core, op, offset_mv) > 0.0
    }

    /// The deepest safe offset (mV, negative) on `core` when the given
    /// opcodes are *enabled* — the minimum margin over the set.
    pub fn safe_offset_mv<I: IntoIterator<Item = Opcode>>(&self, core: usize, enabled: I) -> f64 {
        let min_margin = enabled
            .into_iter()
            .map(|op| self.margin_mv(core, op))
            .fold(f64::INFINITY, f64::min);
        if min_margin.is_infinite() {
            -250.0
        } else {
            -min_margin
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_isa::TABLE1;

    #[test]
    fn mean_margins_follow_table1_order() {
        // More frequently faulting (Table 1) ⇔ smaller margin.
        for w in TABLE1.windows(2) {
            assert!(
                mean_margin_mv(w[0].opcode) <= mean_margin_mv(w[1].opcode),
                "{} vs {}",
                w[0].opcode,
                w[1].opcode
            );
        }
        // Non-faultable instructions sit at the −250 mV horizon.
        assert_eq!(mean_margin_mv(Opcode::Alu), 245.0);
    }

    #[test]
    fn sampling_is_reproducible_and_varies_by_seed() {
        let a = ChipVminModel::sample(4, 15.0, 1);
        let b = ChipVminModel::sample(4, 15.0, 1);
        let c = ChipVminModel::sample(4, 15.0, 2);
        assert_eq!(a.margin_mv(0, Opcode::Imul), b.margin_mv(0, Opcode::Imul));
        assert_ne!(a.margin_mv(0, Opcode::Imul), c.margin_mv(0, Opcode::Imul));
    }

    #[test]
    fn fault_probability_shape() {
        let chip = ChipVminModel::sample(1, 0.0, 7); // no variation
        let m = chip.margin_mv(0, Opcode::Imul);
        assert_eq!(m, 95.0);
        assert_eq!(chip.fault_probability(0, Opcode::Imul, -94.0), 0.0);
        assert_eq!(chip.fault_probability(0, Opcode::Imul, -(m + 20.0)), 1.0);
        let mid = chip.fault_probability(0, Opcode::Imul, -(m + 6.0));
        assert!((0.0..1.0).contains(&mid) && mid > 0.0, "{mid}");
        // Monotone in depth.
        let deeper = chip.fault_probability(0, Opcode::Imul, -(m + 9.0));
        assert!(deeper > mid);
    }

    #[test]
    fn imul_faults_first_on_most_chips() {
        // §4.2: IMUL was the first instruction to fault in 91.2 % of
        // Kogler et al.'s combinations.
        let mut imul_first = 0;
        let total = 200;
        for seed in 0..total {
            let chip = ChipVminModel::sample(1, 12.0, seed);
            let imul = chip.margin_mv(0, Opcode::Imul);
            let others_min = suit_isa::FaultableSet::suit()
                .iter()
                .map(|op| chip.margin_mv(0, op))
                .fold(f64::INFINITY, f64::min);
            if imul < others_min {
                imul_first += 1;
            }
        }
        let frac = imul_first as f64 / total as f64;
        assert!(frac > 0.78, "IMUL first on only {frac:.2} of chips");
    }

    #[test]
    fn safe_offset_tracks_enabled_set() {
        let chip = ChipVminModel::sample(1, 0.0, 3);
        // With everything enabled, IMUL's 95 mV margin binds.
        let all = chip.safe_offset_mv(0, Opcode::ALL);
        assert!((all - (-95.0)).abs() < 1e-9);
        // Disabling the faultable set leaves the −250 mV horizon.
        let none = chip.safe_offset_mv(0, Opcode::ALL.into_iter().filter(|o| !o.is_faultable()));
        assert!((none - (-245.0)).abs() < 1e-9);
        // SUIT's set (faultables disabled, hardened IMUL executes but with
        // relaxed path — not modelled here) checked at the trap level.
        assert!(chip.safe_offset_mv(0, [Opcode::Vpaddq]) < -160.0);
    }

    #[test]
    fn variation_in_requirements_spans_the_paper_range() {
        // Fig. 2: up to 150 mV variation between instructions; §3.1 cites
        // 70 mV average. Our mean spread IMUL → non-faultable is 150 mV.
        let spread = mean_margin_mv(Opcode::Alu) - mean_margin_mv(Opcode::Imul);
        assert!((spread - 150.0).abs() < 1.0);
    }
}
