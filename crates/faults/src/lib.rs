//! # suit-faults
//!
//! The undervolting fault model and security analysis of the SUIT
//! reproduction (§2.3, Table 1, §6.9).
//!
//! Undervolting faults are *silent data errors*: when the supply voltage
//! drops below an instruction's minimum voltage `Vmin`, its datapath
//! misses timing and produces wrong results while the CPU keeps running —
//! the effect Plundervolt/V0LTpwn/VoltJockey exploit. `Vmin` varies per
//! instruction class (the "instruction voltage variation" of Fig. 2, up
//! to 150 mV) and per core/chip (process variation).
//!
//! * [`vmin`] — the per-(chip, core, instruction) minimum-voltage model,
//!   sampled with process variation and ordered by the Table 1 fault
//!   counts (IMUL faults first, VPADDQ last).
//! * [`inject`] — fault-injection campaigns in the style of Kogler et
//!   al.'s Minefield framework: sweep cores × frequencies × offsets,
//!   count per-instruction faults, regenerate Table 1's ordering.
//! * [`security`] — the §6.9 reductionist security argument, made
//!   executable: audit any execution against the invariant *no faultable
//!   instruction ever executes below its Vmin*, comparing a SUIT system
//!   (traps + hardened IMUL) with naive undervolting.
//! * [`mod@attack`] — the motivating exploit class reproduced end to end: a
//!   Plundervolt-style RSA-CRT signer whose undervolted `IMUL`s leak a
//!   prime factor via Boneh–DeMillo–Lipton, and the SUIT configuration
//!   that defeats it.
//! * [`sram`] — the second fault domain: per-bank SRAM retention margins
//!   (Soyturk et al.), a distinct, lower-variance Vmin family whose
//!   faults are deterministic weak-cell bit flips in cache/ROB banks,
//!   with its own injection campaign and the SRAM-aware extension of the
//!   §6.9 audit (*no live bank below its bank-Vmin, or its contents are
//!   untrusted*).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod inject;
pub mod security;
pub mod sram;
pub mod vmin;

pub use attack::{attack, sign_crt, RsaKey, SignerEnv};
pub use inject::{Campaign, CampaignReport};
pub use security::{audit_naive_undervolt, audit_suit_system, audit_suit_traps_only, AuditOutcome};
pub use sram::{
    audit_sram_guarded, audit_sram_naive, SramArrayModel, SramBank, SramBankKind, SramCampaign,
    SramCampaignReport,
};
pub use vmin::{ChipVminModel, VminSample};
