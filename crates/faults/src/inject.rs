//! Fault-injection campaigns — the Minefield-style sweep behind Table 1.
//!
//! Kogler et al. built a framework that executes each instruction many
//! times while sweeping core, frequency and voltage offset, counting a
//! *fault* for every (core, frequency, offset) combination in which the
//! instruction ever produced a wrong result. Table 1 is the per-opcode
//! tally. [`Campaign`] reproduces that methodology against the
//! [`ChipVminModel`], including the actual wrong-value generation (bit
//! flips in the architectural result) used by the security audit.

use suit_emu::{emulate, EmuOperands};
use suit_exec::Threads;
use suit_isa::{FaultableSet, Opcode, Vec128, TABLE1};
use suit_rng::{Rng, SuitRng};
use suit_telemetry::{Counter, Hist, Telemetry};

use crate::vmin::ChipVminModel;

/// A fault-injection campaign configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The chip under test.
    pub chip: ChipVminModel,
    /// Voltage offsets to sweep (mV, negative).
    pub offsets_mv: Vec<f64>,
    /// Frequencies to sweep, GHz (frequency mainly multiplies the number
    /// of tested combinations, as in the original framework).
    pub freqs_ghz: Vec<f64>,
    /// Executions per (combination, instruction).
    pub executions: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Campaign {
    /// The default sweep: offsets from −80 mV to −180 mV in 10 mV steps,
    /// four frequencies, 10 000 executions per point.
    pub fn standard(chip: ChipVminModel, seed: u64) -> Self {
        Campaign {
            chip,
            offsets_mv: (8..=18).map(|i| -10.0 * i as f64).collect(),
            freqs_ghz: vec![3.6, 4.0, 4.4, 4.8],
            executions: 10_000,
            seed,
        }
    }

    /// Runs the campaign and tallies faults per opcode, fanned out across
    /// all available cores. The tally is identical for every thread count.
    pub fn run(&self) -> CampaignReport {
        self.run_with_threads(Threads::Auto.count())
    }

    /// [`Self::run`] with an explicit worker count. One job per
    /// (core, frequency) shard on the [`suit_exec`] executor; shard `s`
    /// draws from `fork(s)` of the campaign seed, so the merged report is
    /// a pure function of the configuration no matter how shards land on
    /// workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run_with_threads(&self, threads: usize) -> CampaignReport {
        self.run_with_threads_telemetry(threads, &Telemetry::off())
    }

    /// [`Self::run_with_threads`] recording per-shard injection counts and
    /// first-fault depths into `tele`. Shards are claimed by workers in
    /// scheduling-dependent order, so only commutative telemetry
    /// operations (counters, histograms) are recorded here — no timeline
    /// events — keeping the shared-recorder snapshot thread-count
    /// invariant. The per-shard reports themselves come back index-ordered
    /// from the executor and merge with commutative, associative ops.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run_with_threads_telemetry(&self, threads: usize, tele: &Telemetry) -> CampaignReport {
        assert!(threads >= 1, "need at least one worker");
        let shards = self.chip.core_count() * self.freqs_ghz.len();
        let partials = suit_exec::run_seeded(
            shards,
            Threads::Fixed(threads),
            self.seed,
            |s, mut rng: SuitRng| {
                let core = s / self.freqs_ghz.len();
                self.run_shard(core, &mut rng, tele)
            },
        );
        let mut report = CampaignReport::empty();
        for p in &partials {
            report.merge(p);
        }
        report
    }

    /// One shard: the offset × instruction sweep of a single
    /// (core, frequency) combination.
    fn run_shard(&self, core: usize, rng: &mut SuitRng, tele: &Telemetry) -> CampaignReport {
        let mut report = CampaignReport::empty();
        let mut shard_faults = 0u64;
        for &offset in &self.offsets_mv {
            for row in TABLE1 {
                let op = row.opcode;
                let p = self.chip.fault_probability(core, op, offset);
                if p <= 0.0 {
                    continue;
                }
                // Probability that at least one of `executions` runs
                // faults.
                let p_any = 1.0 - (1.0 - p).powi(self.executions as i32);
                if rng.f64() < p_any {
                    report.faults[op.index()] += 1;
                    let e = &mut report.first_fault_offset[op.index()];
                    *e = e.max(offset);
                    shard_faults += 1;
                }
            }
        }
        tele.count(Counter::CampaignShards);
        tele.add(Counter::FaultsInjected, shard_faults);
        tele.observe(Hist::FaultsPerShard, shard_faults);
        for op in TABLE1.iter().map(|r| r.opcode) {
            let first = report.first_fault_offset[op.index()];
            if first.is_finite() {
                tele.observe(Hist::FirstFaultDepthMv, (-first) as u64);
            }
        }
        report
    }
}

/// Results of a campaign: Table 1-style per-opcode fault counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    faults: Vec<u32>,
    first_fault_offset: Vec<f64>,
}

impl CampaignReport {
    fn empty() -> Self {
        CampaignReport {
            faults: vec![0; Opcode::COUNT],
            first_fault_offset: vec![f64::NEG_INFINITY; Opcode::COUNT],
        }
    }

    /// Folds another (disjoint-shard) report into this one. Counts add;
    /// first-fault offsets take the shallowest. Commutative and
    /// associative, so merge order cannot affect the result.
    fn merge(&mut self, other: &CampaignReport) {
        for i in 0..Opcode::COUNT {
            self.faults[i] += other.faults[i];
            self.first_fault_offset[i] =
                self.first_fault_offset[i].max(other.first_fault_offset[i]);
        }
    }

    /// Fault count for an opcode (the Table 1 number-of-faults row).
    pub fn faults(&self, op: Opcode) -> u32 {
        self.faults[op.index()]
    }

    /// The shallowest offset at which the opcode faulted, mV
    /// (−∞ if it never faulted).
    pub fn first_fault_offset_mv(&self, op: Opcode) -> f64 {
        self.first_fault_offset[op.index()]
    }

    /// Opcodes ordered by descending fault count — Table 1's column order.
    pub fn ranking(&self) -> Vec<Opcode> {
        let mut ops: Vec<Opcode> = TABLE1.iter().map(|r| r.opcode).collect();
        ops.sort_by_key(|op| std::cmp::Reverse(self.faults(*op)));
        ops
    }
}

/// Executes one instruction at a voltage offset, injecting a silent data
/// error (random bit flips in the architectural result) with the model's
/// fault probability — the primitive the security audit builds on.
///
/// Returns `(result, faulted)`.
pub fn execute_with_faults(
    chip: &ChipVminModel,
    core: usize,
    op: Opcode,
    operands: EmuOperands,
    offset_mv: f64,
    rng: &mut SuitRng,
) -> (Vec128, bool) {
    let correct = emulate(op, operands)
        .expect("faultable opcodes are emulatable")
        .value;
    let p = chip.fault_probability(core, op, offset_mv);
    if p > 0.0 && rng.f64() < p {
        // Undervolting faults flip a small number of data bits (§2.1:
        // late-arriving data on the critical path).
        let flips = rng.gen_range(1u32..=3);
        let mut mask = 0u128;
        for _ in 0..flips {
            mask |= 1u128 << rng.gen_range(0u32..128);
        }
        (Vec128::from_u128(correct.as_u128() ^ mask), true)
    } else {
        (correct, false)
    }
}

/// Convenience: the faultable set that must be disabled for the sweep's
/// deepest offset to be safe on every core.
pub fn required_disable_set(chip: &ChipVminModel, offset_mv: f64) -> FaultableSet {
    let mut set = FaultableSet::new();
    for row in TABLE1 {
        for core in 0..chip.core_count() {
            if chip.can_fault(core, row.opcode, offset_mv) {
                set.insert(row.opcode);
                break;
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipVminModel {
        ChipVminModel::sample(4, 12.0, 42)
    }

    #[test]
    fn imul_tops_the_fault_ranking() {
        let report = Campaign::standard(chip(), 1).run();
        let ranking = report.ranking();
        assert_eq!(ranking[0], Opcode::Imul, "{ranking:?}");
        // And VPADDQ (1 fault in the paper) is at or near the bottom.
        let pos = ranking.iter().position(|&o| o == Opcode::Vpaddq).unwrap();
        assert!(pos >= 9, "VPADDQ ranked {pos}");
    }

    #[test]
    fn fault_counts_follow_margin_order_broadly() {
        let report = Campaign::standard(chip(), 1).run();
        // Rarely-faulting instructions fault at deeper offsets on average
        // (Table 1 caption).
        assert!(report.faults(Opcode::Imul) > report.faults(Opcode::Vpcmp));
        assert!(report.faults(Opcode::Vor) > report.faults(Opcode::Vpaddq));
        assert!(
            report.first_fault_offset_mv(Opcode::Imul)
                > report.first_fault_offset_mv(Opcode::Vpaddq),
            "IMUL faults at shallower undervolt"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = Campaign::standard(chip(), 9).run();
        let b = Campaign::standard(chip(), 9).run();
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let serial = Campaign::standard(chip(), 9).run_with_threads(1);
        for threads in [2, 4, 8] {
            let parallel = Campaign::standard(chip(), 9).run_with_threads(threads);
            assert_eq!(serial, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn campaign_telemetry_is_thread_count_invariant() {
        let campaign = Campaign::standard(chip(), 9);
        let tele = Telemetry::recording();
        let serial = campaign.run_with_threads_telemetry(1, &tele);
        let reference = tele.snapshot();
        let shards = (campaign.chip.core_count() * campaign.freqs_ghz.len()) as u64;
        assert_eq!(reference.counter(Counter::CampaignShards), shards);
        let total: u32 = TABLE1.iter().map(|r| serial.faults(r.opcode)).sum();
        assert_eq!(reference.counter(Counter::FaultsInjected), u64::from(total));
        assert_eq!(reference.hist(Hist::FaultsPerShard).count(), shards);
        assert!(reference.hist(Hist::FirstFaultDepthMv).count() > 0);
        for threads in [2, 4, 8] {
            let tele = Telemetry::recording();
            let parallel = campaign.run_with_threads_telemetry(threads, &tele);
            assert_eq!(serial, parallel, "{threads} threads diverged");
            assert_eq!(
                reference,
                tele.snapshot(),
                "{threads}-thread telemetry diverged"
            );
        }
    }

    #[test]
    fn no_faults_at_conservative_voltage() {
        let c = chip();
        let mut campaign = Campaign::standard(c, 1);
        campaign.offsets_mv = vec![0.0, -20.0, -50.0];
        let report = campaign.run();
        for row in TABLE1 {
            assert_eq!(report.faults(row.opcode), 0, "{}", row.opcode);
        }
    }

    #[test]
    fn injected_faults_corrupt_results() {
        let c = ChipVminModel::sample(1, 0.0, 5);
        let mut rng = SuitRng::seed_from_u64(3);
        let ops = EmuOperands::new(Vec128::from_u128(7), Vec128::from_u128(9));
        // Deep below IMUL's margin: always faults.
        let (bad, faulted) = execute_with_faults(&c, 0, Opcode::Imul, ops, -150.0, &mut rng);
        assert!(faulted);
        assert_ne!(bad.as_u128(), 63, "result must be corrupted");
        // At stock voltage: never faults, result exact.
        let (good, faulted) = execute_with_faults(&c, 0, Opcode::Imul, ops, 0.0, &mut rng);
        assert!(!faulted);
        assert_eq!(good.as_u128(), 63);
    }

    #[test]
    fn required_disable_set_grows_with_depth() {
        let c = chip();
        let shallow = required_disable_set(&c, -105.0);
        let deep = required_disable_set(&c, -175.0);
        assert!(shallow.len() <= deep.len());
        assert!(shallow.contains(Opcode::Imul), "IMUL binds first");
        assert_eq!(deep.intersection(FaultableSet::table1()), deep);
    }
}
