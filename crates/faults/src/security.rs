//! The §6.9 security analysis, made executable.
//!
//! The paper's argument is reductionist: SUIT's security equals today's
//! CPUs' because (a) the efficient curve is vendor-qualified for the
//! instruction set with the faultable instructions *removed*, and the
//! hardware forbids selecting it while any of them is enabled (the MSR
//! invariant of `suit-core`); (b) executing a faultable instruction first
//! forces a transition to the conservative curve, which is qualified for
//! *everything*; (c) the hardened 4-cycle `IMUL` has ≥ 33 % timing slack
//! on the efficient curve — more than the offset consumes — so it is no
//! longer faultable there.
//!
//! This module *audits* those claims against the fault model: it executes
//! instruction sequences under a SUIT system and under naive undervolting
//! and counts silent data errors. The SUIT audit must come back clean for
//! every seed, offset and sequence; the naive audit must not (that is the
//! vulnerability Plundervolt exploits).

use suit_core::{CurveSelect, SuitMsrs};
use suit_emu::EmuOperands;
use suit_isa::{FaultableSet, Opcode, Vec128};
use suit_rng::{Rng, SuitRng};

use crate::inject::execute_with_faults;
use crate::vmin::ChipVminModel;

/// Outcome of a security audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOutcome {
    /// Instructions executed.
    pub executed: u64,
    /// Instructions that trapped with `#DO` (and were then executed
    /// safely on the conservative curve).
    pub trapped: u64,
    /// Silent data errors observed — **any non-zero value is a security
    /// failure**.
    pub silent_errors: u64,
}

impl AuditOutcome {
    /// Whether the system survived the audit.
    pub fn is_secure(&self) -> bool {
        self.silent_errors == 0
    }
}

/// How far the SUIT hardening relaxes `IMUL`'s effective margin: one extra
/// pipeline stage gives each stage 4/3 of the period, worth ≈ 220 mV at
/// the top of the curve (§6.9, Fig. 13) — far beyond any evaluated offset.
pub const HARDENED_IMUL_EXTRA_MARGIN_MV: f64 = 220.0;

/// Generates a pseudo-random instruction sequence drawn from the full
/// opcode set (faultable and not).
fn sequence(seed: u64, len: usize) -> Vec<(Opcode, EmuOperands)> {
    let mut rng = SuitRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let idx = rng.gen_range(0..suit_isa::TABLE1.len());
            let op = suit_isa::TABLE1[idx].opcode;
            let operands = EmuOperands::with_imm(
                Vec128::from_u128(rng.u128()),
                Vec128::from_u128(rng.u128()),
                rng.u8(),
            );
            (op, operands)
        })
        .collect()
}

/// Audits a **naive undervolt**: the offset is applied and every
/// instruction executes directly — today's overclocking-style undervolting
/// without SUIT. At offsets beyond the instruction margins this produces
/// silent data errors (the Plundervolt scenario).
pub fn audit_naive_undervolt(
    chip: &ChipVminModel,
    core: usize,
    offset_mv: f64,
    seed: u64,
    len: usize,
) -> AuditOutcome {
    let mut rng = SuitRng::seed_from_u64(seed ^ 0xDEAD);
    let mut out = AuditOutcome {
        executed: 0,
        trapped: 0,
        silent_errors: 0,
    };
    for (op, operands) in sequence(seed, len) {
        let (_, faulted) = execute_with_faults(chip, core, op, operands, offset_mv, &mut rng);
        out.executed += 1;
        if faulted {
            out.silent_errors += 1;
        }
    }
    out
}

/// Audits a **SUIT system** at the same offset:
///
/// * the disable-opcode / curve MSRs enforce the §3.2 invariant;
/// * executing a disabled instruction raises `#DO` instead of computing;
/// * the OS switches to the conservative curve (offset 0) and re-executes;
/// * the hardened `IMUL` runs on the efficient curve with its extra
///   220 mV margin.
///
/// Any silent error in the outcome disproves the §6.9 reduction.
pub fn audit_suit_system(
    chip: &ChipVminModel,
    core: usize,
    offset_mv: f64,
    seed: u64,
    len: usize,
) -> AuditOutcome {
    audit_suit(
        chip,
        core,
        offset_mv,
        seed ^ 0xBEEF,
        seed,
        len,
        SuitMsrs::suit_cpu(),
        true,
    )
}

/// Audits a SUIT system **without** the hardened-IMUL option: the
/// vendor-qualified faultable set is all of Table 1, so `IMUL` also
/// traps with `#DO` instead of executing hardened on the efficient
/// curve. This is the "SUIT traps" defence point of the scenario matrix
/// — slower (every `IMUL` pays a curve transition) but equally secure.
pub fn audit_suit_traps_only(
    chip: &ChipVminModel,
    core: usize,
    offset_mv: f64,
    seed: u64,
    len: usize,
) -> AuditOutcome {
    audit_suit(
        chip,
        core,
        offset_mv,
        seed ^ 0xFACE,
        seed,
        len,
        SuitMsrs::new(FaultableSet::table1()),
        false,
    )
}

/// Shared body of the SUIT audits: `msrs` carries the vendor faultable
/// set (what `disable_faultable` disables), `hardened_imul` selects
/// whether `IMUL` executes on the efficient curve with its extra margin.
#[allow(clippy::too_many_arguments)]
fn audit_suit(
    chip: &ChipVminModel,
    core: usize,
    offset_mv: f64,
    rng_seed: u64,
    seed: u64,
    len: usize,
    mut msrs: SuitMsrs,
    hardened_imul: bool,
) -> AuditOutcome {
    let mut rng = SuitRng::seed_from_u64(rng_seed);
    msrs.disable_faultable();
    msrs.write_curve(CurveSelect::Efficient)
        .expect("faultable set is disabled");

    let mut out = AuditOutcome {
        executed: 0,
        trapped: 0,
        silent_errors: 0,
    };
    for (op, operands) in sequence(seed, len) {
        assert!(msrs.invariant_holds(), "MSR invariant violated");
        let (effective_offset, trapped) = if msrs.curve() == CurveSelect::Efficient {
            if msrs.is_disabled(op) {
                // #DO: the OS switches to the conservative curve (Listing 1)
                // and the instruction re-executes there at offset 0.
                msrs.write_curve(CurveSelect::Conservative)
                    .expect("always legal");
                msrs.enable_all().expect("legal on conservative");
                (0.0, true)
            } else if hardened_imul && op == Opcode::Imul {
                // Hardened IMUL on the efficient curve: the relaxed
                // critical path absorbs the offset.
                ((offset_mv + HARDENED_IMUL_EXTRA_MARGIN_MV).min(0.0), false)
            } else {
                (offset_mv, false)
            }
        } else {
            // Conservative curve: everything runs at the qualified voltage.
            (0.0, false)
        };

        let (_, faulted) =
            execute_with_faults(chip, core, op, operands, effective_offset, &mut rng);
        out.executed += 1;
        if trapped {
            out.trapped += 1;
        }
        if faulted {
            out.silent_errors += 1;
        }

        // Deadline expiry: occasionally return to the efficient curve (the
        // timer path of §4.1) — the audit must hold across transitions.
        if msrs.curve() == CurveSelect::Conservative && rng.f64() < 0.2 {
            msrs.disable_faultable();
            msrs.write_curve(CurveSelect::Efficient)
                .expect("set disabled");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> ChipVminModel {
        ChipVminModel::sample(2, 12.0, 77)
    }

    #[test]
    fn naive_undervolting_at_97mv_is_not_reliably_safe() {
        // −97 mV is below IMUL's ~100 mV mean margin on many chips; over
        // several chips the naive system must show silent errors — the
        // motivating vulnerability.
        let mut total_errors = 0;
        for seed in 0..10 {
            let chip = ChipVminModel::sample(1, 12.0, seed);
            let out = audit_naive_undervolt(&chip, 0, -130.0, seed, 3000);
            total_errors += out.silent_errors;
        }
        assert!(total_errors > 0, "naive undervolting must eventually fault");
    }

    #[test]
    fn suit_is_clean_at_both_evaluated_offsets() {
        for offset in [-70.0, -97.0] {
            for seed in 0..20 {
                let out = audit_suit_system(&chip(), 0, offset, seed, 2000);
                assert!(out.is_secure(), "offset {offset}, seed {seed}: {out:?}");
                assert!(out.trapped > 0, "audit must exercise the trap path");
            }
        }
    }

    #[test]
    fn suit_is_clean_even_at_extreme_offsets() {
        // Even −150 mV (deeper than the paper evaluates) stays silent-error
        // free *with traps*, because faultable instructions simply never
        // execute on the efficient curve. (Reliability of non-faultable
        // instructions bounds how deep one may actually go; the MSR design
        // itself never executes a disabled instruction.)
        let out = audit_suit_system(&chip(), 0, -150.0, 3, 4000);
        assert!(out.is_secure(), "{out:?}");
    }

    #[test]
    fn trapped_instruction_count_is_substantial() {
        let out = audit_suit_system(&chip(), 0, -97.0, 11, 2000);
        // The sequence draws only Table 1 opcodes; each trap parks the
        // system on the conservative curve for a few instructions, so
        // roughly one in six executions traps.
        assert!(out.trapped > out.executed / 8, "{out:?}");
    }

    #[test]
    fn traps_only_suit_is_clean_and_traps_imul_too() {
        // Structurally, the traps-only vendor set covers all of Table 1,
        // so IMUL is disabled on the efficient curve instead of hardened.
        let mut msrs = SuitMsrs::new(FaultableSet::table1());
        msrs.disable_faultable();
        assert!(msrs.is_disabled(Opcode::Imul));
        for seed in 0..10 {
            let out = audit_suit_traps_only(&chip(), 0, -130.0, seed, 2000);
            assert!(out.is_secure(), "seed {seed}: {out:?}");
            assert!(out.trapped > out.executed / 8, "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn hardened_imul_margin_covers_evaluated_offsets() {
        // §6.9: the 4-cycle IMUL gains ≈ 220 mV of margin at the top of
        // the curve — both evaluated offsets are far inside it.
        let margin = HARDENED_IMUL_EXTRA_MARGIN_MV;
        assert!(margin > 97.0 + 70.0, "{margin}");
    }
}
