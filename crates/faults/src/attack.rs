//! The motivating attack, reproduced in simulation: RSA-CRT key recovery
//! from a single faulty multiplication (Boneh–DeMillo–Lipton), the class
//! of exploit Plundervolt \[47\] mounted through undervolted `IMUL`s.
//!
//! The paper's threat model (§1, §3.1): a silent data error in *one*
//! multiply during CRT exponentiation produces a signature `s'` that is
//! correct modulo one prime and wrong modulo the other; then
//! `gcd(s'^e − m, n)` reveals a prime factor of `n` — the complete
//! private key, from one fault. This module:
//!
//! * implements a miniature RSA-CRT signer whose multiplications run
//!   through the undervolting fault model (`execute_with_faults` on
//!   `IMUL`),
//! * implements the factor-recovery attack,
//! * and shows the defence: under SUIT the signer's multiplies are the
//!   *hardened* IMUL (safe on the efficient curve), so no faulty
//!   signature ever appears.
//!
//! Key sizes are toy (32-bit primes) — the algebra of the attack is
//! identical at any size and the point is the fault plumbing, not
//! cryptographic strength.

use suit_emu::EmuOperands;
use suit_isa::{Opcode, Vec128};
use suit_rng::{Rng, SuitRng};

use crate::inject::execute_with_faults;
use crate::vmin::ChipVminModel;

/// A toy RSA key pair with CRT parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsaKey {
    /// Modulus n = p·q.
    pub n: u64,
    /// Public exponent.
    pub e: u64,
    /// First prime.
    pub p: u32,
    /// Second prime.
    pub q: u32,
    /// d mod (p−1).
    pub dp: u64,
    /// d mod (q−1).
    pub dq: u64,
    /// q⁻¹ mod p (CRT recombination coefficient).
    pub qinv: u64,
}

/// Deterministic Miller–Rabin for u64 (sufficient witness set).
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n % p == 0 {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d % 2 == 0 {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = modexp(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn modexp(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

fn modinv(a: u64, m: u64) -> Option<u64> {
    let (g, x, _) = egcd(a as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some((x.rem_euclid(m as i128)) as u64)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl RsaKey {
    /// Generates a toy key with ~32-bit primes from a seed.
    pub fn generate(seed: u64) -> RsaKey {
        let mut rng = SuitRng::seed_from_u64(seed);
        let mut prime = || loop {
            let candidate: u32 = rng.gen_range(1 << 30..u32::MAX) | 1;
            if is_prime(u64::from(candidate)) {
                return candidate;
            }
        };
        loop {
            let p = prime();
            let q = prime();
            if p == q {
                continue;
            }
            let e = 65537u64;
            let phi = u64::from(p - 1) as u128 * u64::from(q - 1) as u128;
            // e must be invertible mod φ; d = e⁻¹ mod φ.
            let (g, x, _) = egcd(e as i128, phi as i128);
            if g != 1 {
                continue;
            }
            let d = x.rem_euclid(phi as i128) as u128;
            let dp = (d % u128::from(p - 1)) as u64;
            let dq = (d % u128::from(q - 1)) as u64;
            let Some(qinv) = modinv(u64::from(q), u64::from(p)) else {
                continue;
            };
            return RsaKey {
                n: u64::from(p) * u64::from(q),
                e,
                p,
                q,
                dp,
                dq,
                qinv,
            };
        }
    }

    /// Textbook verification: `s^e mod n == m`.
    pub fn verify(&self, m: u64, s: u64) -> bool {
        modexp(s, self.e, self.n) == m % self.n
    }
}

/// How the signer's multiplies execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignerEnv<'a> {
    /// All multiplications are exact (stock voltage, or SUIT's hardened
    /// IMUL on the efficient curve — its +220 mV slack absorbs the offset).
    Reliable,
    /// Naive undervolting: every multiply runs at `offset_mv` below the
    /// conservative curve through the fault model.
    NaiveUndervolt {
        /// The chip under attack.
        chip: &'a ChipVminModel,
        /// Core executing the signer.
        core: usize,
        /// Applied offset, mV (negative).
        offset_mv: f64,
    },
}

/// One 64×64 multiply executed through the environment (possibly faulted).
fn mul_via_env(env: &SignerEnv<'_>, rng: &mut SuitRng, a: u64, b: u64) -> u128 {
    match env {
        SignerEnv::Reliable => a as u128 * b as u128,
        SignerEnv::NaiveUndervolt {
            chip,
            core,
            offset_mv,
        } => {
            let ops = EmuOperands::new(Vec128::from_u64x2([a, 0]), Vec128::from_u64x2([b, 0]));
            let (v, _faulted) =
                execute_with_faults(chip, *core, Opcode::Imul, ops, *offset_mv, rng);
            v.as_u128()
        }
    }
}

fn mulmod_env(env: &SignerEnv<'_>, rng: &mut SuitRng, a: u64, b: u64, m: u64) -> u64 {
    (mul_via_env(env, rng, a, b) % m as u128) as u64
}

fn modexp_env(env: &SignerEnv<'_>, rng: &mut SuitRng, mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod_env(env, rng, acc, base, m);
        }
        base = mulmod_env(env, rng, base, base, m);
        exp >>= 1;
    }
    acc
}

/// CRT signing with the environment's multiplier: the Plundervolt victim.
pub fn sign_crt(key: &RsaKey, m: u64, env: &SignerEnv<'_>, seed: u64) -> u64 {
    let mut rng = SuitRng::seed_from_u64(seed);
    let p = u64::from(key.p);
    let q = u64::from(key.q);
    let sp = modexp_env(env, &mut rng, m % p, key.dp, p);
    let sq = modexp_env(env, &mut rng, m % q, key.dq, q);
    // s = sq + q · ((sp − sq) · qinv mod p)
    let h = mulmod_env(env, &mut rng, (sp + p - sq % p) % p, key.qinv, p);
    (sq as u128 + q as u128 * h as u128) as u64 % key.n
}

/// The Boneh–DeMillo–Lipton factor recovery: from a faulty signature,
/// `gcd(s'^e − m, n)` yields a prime factor.
///
/// ```
/// use suit_faults::{RsaKey, SignerEnv, sign_crt};
/// use suit_faults::attack::recover_factor;
///
/// let key = RsaKey::generate(7);
/// let good = sign_crt(&key, 42, &SignerEnv::Reliable, 0);
/// // A correct signature leaks nothing…
/// assert!(recover_factor(key.n, key.e, 42, good).is_none());
/// // …but one corrupted in a single CRT branch leaks a prime factor.
/// let faulty = (good as u128 + u64::from(key.p) as u128) as u64 % key.n;
/// let f = recover_factor(key.n, key.e, 42, faulty).unwrap();
/// assert_eq!(key.n % f, 0);
/// ```
pub fn recover_factor(key_public_n: u64, e: u64, m: u64, faulty_sig: u64) -> Option<u64> {
    let se = modexp(faulty_sig, e, key_public_n);
    let diff = if se >= m % key_public_n {
        se - m % key_public_n
    } else {
        key_public_n - (m % key_public_n - se)
    };
    if diff == 0 {
        return None; // signature was correct
    }
    let g = gcd(diff, key_public_n);
    (g != 1 && g != key_public_n).then_some(g)
}

/// Runs the full attack campaign: request signatures from the victim until
/// a faulty one leaks a factor, up to `attempts`. Returns the recovered
/// factor and the number of signatures it took.
pub fn attack(key: &RsaKey, env: &SignerEnv<'_>, attempts: u32, seed: u64) -> Option<(u64, u32)> {
    for i in 0..attempts {
        let m = 0x1234_5678 ^ (u64::from(i) * 0x9e37);
        let s = sign_crt(key, m, env, seed.wrapping_add(u64::from(i)));
        if !key.verify(m, s) {
            if let Some(f) = recover_factor(key.n, key.e, m, s) {
                return Some((f, i + 1));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::HARDENED_IMUL_EXTRA_MARGIN_MV;

    #[test]
    fn key_generation_and_reliable_signing() {
        let key = RsaKey::generate(1);
        assert!(is_prime(u64::from(key.p)));
        assert!(is_prime(u64::from(key.q)));
        let env = SignerEnv::Reliable;
        for m in [2u64, 12345, 0xdead_beef] {
            let s = sign_crt(&key, m, &env, 0);
            assert!(key.verify(m, s), "m = {m}");
        }
    }

    #[test]
    fn recover_factor_on_a_synthetic_fault() {
        // Corrupt only the q-branch: s' ≡ s (mod p) but not (mod q).
        let key = RsaKey::generate(2);
        let m = 987_654_321u64;
        let good = sign_crt(&key, m, &SignerEnv::Reliable, 0);
        // Add p·k to shift the value mod q while keeping it mod p… easier:
        // flip s by a multiple of p (stays correct mod p, breaks mod q).
        let faulty = (good as u128 + u64::from(key.p) as u128) as u64 % key.n;
        assert!(!key.verify(m, faulty));
        let f = recover_factor(key.n, key.e, m, faulty).expect("factor leaks");
        assert!(f == u64::from(key.p) || f == u64::from(key.q));
        assert_eq!(key.n % f, 0);
    }

    #[test]
    fn plundervolt_attack_succeeds_against_naive_undervolting() {
        // Deep undervolt: IMUL faults with small probability per multiply;
        // across a few hundred signatures one CRT branch gets corrupted.
        let key = RsaKey::generate(3);
        let chip = ChipVminModel::sample(1, 0.0, 3);
        let offset = -(chip.margin_mv(0, Opcode::Imul) + 4.0); // onset region
        let env = SignerEnv::NaiveUndervolt {
            chip: &chip,
            core: 0,
            offset_mv: offset,
        };
        let (factor, tries) = attack(&key, &env, 400, 7).expect("key must leak");
        assert_eq!(key.n % factor, 0);
        assert!(factor == u64::from(key.p) || factor == u64::from(key.q));
        assert!(tries >= 1);
    }

    #[test]
    fn suit_hardened_imul_defeats_the_attack() {
        // Under SUIT, the signer's multiplies are the hardened IMUL whose
        // +220 mV slack absorbs any evaluated offset — the environment is
        // [`SignerEnv::Reliable`] by construction (cf. security::audit):
        // at −97 mV the hardened margin is nowhere near exhausted.
        let key = RsaKey::generate(4);
        let chip = ChipVminModel::sample(1, 12.0, 4);
        let effective = -97.0 + HARDENED_IMUL_EXTRA_MARGIN_MV;
        assert!(effective > 0.0, "offset fully absorbed");
        let env = SignerEnv::Reliable;
        assert!(
            attack(&key, &env, 200, 9).is_none(),
            "no faulty signature may appear"
        );
        // And every signature verifies.
        for m in 0..20u64 {
            let s = sign_crt(&key, m + 2, &env, m);
            assert!(key.verify(m + 2, s));
        }
        let _ = chip;
    }

    #[test]
    fn shallow_undervolt_is_also_safe_without_suit() {
        // Above the IMUL margin nothing faults — the guardband works; the
        // attack only exists because naive undervolting *removes* it.
        let key = RsaKey::generate(5);
        let chip = ChipVminModel::sample(1, 0.0, 5);
        let env = SignerEnv::NaiveUndervolt {
            chip: &chip,
            core: 0,
            offset_mv: -40.0,
        };
        assert!(attack(&key, &env, 100, 11).is_none());
    }
}
