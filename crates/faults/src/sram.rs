//! Per-bank SRAM minimum-voltage fault model — the second fault domain.
//!
//! The instruction-Vmin model ([`crate::vmin`]) covers datapath timing
//! faults: wrong results out of a live execution unit. Soyturk et al.
//! ("Hardware Versus Software Fault Injection of Modern Undervolted
//! SRAMs") measured a *different* failure family in the on-die SRAM
//! arrays: each cache/ROB bank has its own minimum retention voltage,
//! the distribution across banks is much tighter than the Fig. 2
//! instruction spread, the onset is sharper, and — crucially — the
//! failures are *repeatable*: the same handful of weak cells flip in the
//! same bank every time the bank drops below its Vmin. This module
//! reproduces that family:
//!
//! * [`SramArrayModel`] samples per-bank margins from a lower-variance
//!   distribution than the instruction curves (bank sigma is
//!   [`SRAM_SIGMA_SCALE`] of the datapath sigma, onset width
//!   [`SRAM_ONSET_WIDTH_MV`] is half the instruction band) and fixes each
//!   bank's weak-cell positions at sampling time, so a faulting bank
//!   corrupts words with a *deterministic* per-bank flip mask.
//! * [`SramCampaign`] sweeps banks × offsets with thread-count-invariant
//!   per-shard counts merged over [`suit_exec`], mirroring
//!   [`crate::inject::Campaign`].
//! * [`audit_sram_naive`] / [`audit_sram_guarded`] extend the §6.9 audit
//!   to the new class: the SRAM-aware invariant is *no live bank operates
//!   below its bank-Vmin, or its contents are treated as untrusted* — the
//!   guarded system quarantines every bank whose margin the offset
//!   crosses and re-fetches through it at the conservative voltage.

use suit_exec::Threads;
use suit_rng::{Rng, SuitRng};
use suit_telemetry::{Counter, Hist, Telemetry};
use suit_trace::gen::standard_normal;

use crate::security::AuditOutcome;

/// Which microarchitectural array a bank belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SramBankKind {
    /// A data/instruction cache bank (6T cells, larger retention margin).
    Cache,
    /// A reorder-buffer bank (denser, ages first under undervolt).
    Rob,
}

impl SramBankKind {
    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SramBankKind::Cache => "cache",
            SramBankKind::Rob => "rob",
        }
    }
}

/// Mean retention margin (mV below the conservative-curve voltage) at
/// which a bank of the given kind starts flipping its weak cells.
/// The SRAM family sits *above* IMUL's 95 mV datapath margin — caches
/// keep retaining after the first instructions fault — but below the
/// −250 mV horizon, matching Soyturk et al.'s observation that SRAM
/// failures appear between the first datapath faults and a full crash.
pub fn mean_bank_margin_mv(kind: SramBankKind) -> f64 {
    match kind {
        SramBankKind::Cache => 150.0,
        SramBankKind::Rob => 138.0,
    }
}

/// Width of the SRAM fault-onset band, mV. Retention failure is much
/// sharper than datapath timing: half the instruction onset band
/// ([`crate::vmin::ONSET_WIDTH_MV`]).
pub const SRAM_ONSET_WIDTH_MV: f64 = 6.0;

/// Bank-to-bank sigma as a fraction of the datapath process-variation
/// sigma — the "distinct, lower-variance family" of Soyturk et al.
pub const SRAM_SIGMA_SCALE: f64 = 0.35;

/// One SRAM bank: its sampled retention margin and its fixed weak-cell
/// flip mask (1–3 bit positions within a 128-bit word, chosen at
/// sampling time — below Vmin, the *same* cells flip on every access).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramBank {
    /// Array this bank belongs to.
    pub kind: SramBankKind,
    /// Margin below the conservative curve at which retention fails, mV.
    pub margin_mv: f64,
    /// The weak cells: XOR-ed into every word read below the margin.
    pub flip_mask: u128,
}

/// A sampled SRAM array instance: cache banks first, then ROB banks.
#[derive(Debug, Clone, PartialEq)]
pub struct SramArrayModel {
    banks: Vec<SramBank>,
}

impl SramArrayModel {
    /// Samples an array with `cache_banks` + `rob_banks` banks.
    /// `sigma_mv` is the *datapath* process-variation sigma — the SRAM
    /// family scales it down by [`SRAM_SIGMA_SCALE`]; `seed` makes the
    /// array (margins *and* weak-cell positions) reproducible.
    pub fn sample(cache_banks: usize, rob_banks: usize, sigma_mv: f64, seed: u64) -> Self {
        assert!(cache_banks + rob_banks >= 1, "need at least one bank");
        assert!(sigma_mv >= 0.0);
        let mut rng = SuitRng::seed_from_u64(seed);
        let bank_sigma = sigma_mv * SRAM_SIGMA_SCALE;
        // Array-wide shift (die-to-die), tighter than the datapath's.
        let array_shift: f64 = standard_normal(&mut rng) * bank_sigma * 0.7;
        let mut banks = Vec::with_capacity(cache_banks + rob_banks);
        for i in 0..cache_banks + rob_banks {
            let kind = if i < cache_banks {
                SramBankKind::Cache
            } else {
                SramBankKind::Rob
            };
            let noise = standard_normal(&mut rng) * bank_sigma;
            let flips = rng.gen_range(1u32..=3);
            let mut flip_mask = 0u128;
            for _ in 0..flips {
                flip_mask |= 1u128 << rng.gen_range(0u32..128);
            }
            banks.push(SramBank {
                kind,
                margin_mv: (mean_bank_margin_mv(kind) + array_shift + noise).max(40.0),
                flip_mask,
            });
        }
        SramArrayModel { banks }
    }

    /// Number of banks (cache + ROB).
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The bank at `index`.
    pub fn bank(&self, index: usize) -> SramBank {
        self.banks[index]
    }

    /// Retention margin of bank `index`, mV below the conservative curve.
    pub fn margin_mv(&self, index: usize) -> f64 {
        self.banks[index].margin_mv
    }

    /// Probability that one access to bank `index` at `offset_mv`
    /// (negative) returns the weak cells flipped. Same quadratic onset
    /// shape as the instruction model, over the sharper
    /// [`SRAM_ONSET_WIDTH_MV`] band.
    pub fn fault_probability(&self, index: usize, offset_mv: f64) -> f64 {
        let undervolt = -offset_mv;
        let threshold = self.margin_mv(index);
        if undervolt <= threshold {
            0.0
        } else if undervolt >= threshold + SRAM_ONSET_WIDTH_MV {
            1.0
        } else {
            let x = (undervolt - threshold) / SRAM_ONSET_WIDTH_MV;
            x * x
        }
    }

    /// Whether bank `index` can flip at all at `offset_mv`.
    pub fn can_fault(&self, index: usize, offset_mv: f64) -> bool {
        self.fault_probability(index, offset_mv) > 0.0
    }

    /// Indices of every bank that can fault at `offset_mv`, ascending.
    /// Monotone in depth: a deeper offset yields a superset — the basis
    /// of the guarded audit's quarantine.
    pub fn faulted_banks(&self, offset_mv: f64) -> Vec<usize> {
        (0..self.banks.len())
            .filter(|&i| self.can_fault(i, offset_mv))
            .collect()
    }

    /// Reads `word` through bank `index` at `offset_mv`: with the bank's
    /// fault probability the fixed weak cells flip. Returns
    /// `(value, flipped)`.
    pub fn read_word(
        &self,
        index: usize,
        word: u128,
        offset_mv: f64,
        rng: &mut SuitRng,
    ) -> (u128, bool) {
        let p = self.fault_probability(index, offset_mv);
        if p > 0.0 && rng.f64() < p {
            (word ^ self.banks[index].flip_mask, true)
        } else {
            (word, false)
        }
    }
}

/// An SRAM injection campaign: sweep every bank over a set of offsets,
/// counting retention faults — the Soyturk-style analogue of the
/// Minefield instruction sweep.
#[derive(Debug, Clone)]
pub struct SramCampaign {
    /// The array under test.
    pub array: SramArrayModel,
    /// Voltage offsets to sweep (mV, negative).
    pub offsets_mv: Vec<f64>,
    /// Accesses per (bank, offset) point.
    pub reads: u32,
    /// RNG seed.
    pub seed: u64,
}

impl SramCampaign {
    /// The default sweep: offsets from −100 mV to −180 mV in 10 mV
    /// steps, 4096 accesses per point.
    pub fn standard(array: SramArrayModel, seed: u64) -> Self {
        SramCampaign {
            array,
            offsets_mv: (10..=18).map(|i| -10.0 * i as f64).collect(),
            reads: 4096,
            seed,
        }
    }

    /// Runs the campaign over all available cores; the tally is
    /// identical for every thread count.
    pub fn run(&self) -> SramCampaignReport {
        self.run_with_threads(Threads::Auto.count())
    }

    /// [`Self::run`] with an explicit worker count: one shard per bank
    /// on the [`suit_exec`] executor, shard `s` drawing from `fork(s)` of
    /// the campaign seed, partials merged with commutative ops.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run_with_threads(&self, threads: usize) -> SramCampaignReport {
        self.run_with_threads_telemetry(threads, &Telemetry::off())
    }

    /// [`Self::run_with_threads`] recording per-shard counts into
    /// `tele`. Only commutative operations (counters, histograms), so
    /// the snapshot is thread-count invariant like the report.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn run_with_threads_telemetry(
        &self,
        threads: usize,
        tele: &Telemetry,
    ) -> SramCampaignReport {
        assert!(threads >= 1, "need at least one worker");
        let shards = self.array.bank_count();
        let partials = suit_exec::run_seeded(
            shards,
            Threads::Fixed(threads),
            self.seed,
            |bank, mut rng: SuitRng| self.run_shard(bank, &mut rng, tele),
        );
        let mut report = SramCampaignReport::empty(shards);
        for p in &partials {
            report.merge(p);
        }
        report
    }

    /// One shard: the offset sweep of a single bank.
    fn run_shard(&self, bank: usize, rng: &mut SuitRng, tele: &Telemetry) -> SramCampaignReport {
        let mut report = SramCampaignReport::empty(self.array.bank_count());
        let mut shard_faults = 0u64;
        for &offset in &self.offsets_mv {
            let p = self.array.fault_probability(bank, offset);
            if p <= 0.0 {
                continue;
            }
            // Probability that at least one of `reads` accesses flips.
            let p_any = 1.0 - (1.0 - p).powi(self.reads as i32);
            if rng.f64() < p_any {
                report.faults[bank] += 1;
                report.bits_flipped += u64::from(self.array.bank(bank).flip_mask.count_ones());
                let e = &mut report.first_fault_offset[bank];
                *e = e.max(offset);
                shard_faults += 1;
            }
        }
        tele.count(Counter::SramBanksSwept);
        tele.add(Counter::SramBitFlips, report.bits_flipped);
        tele.observe(Hist::SramFaultsPerBank, shard_faults);
        report
    }
}

/// Results of an SRAM campaign: per-bank fault counts and first-fault
/// depths.
#[derive(Debug, Clone, PartialEq)]
pub struct SramCampaignReport {
    faults: Vec<u32>,
    first_fault_offset: Vec<f64>,
    bits_flipped: u64,
}

impl SramCampaignReport {
    fn empty(banks: usize) -> Self {
        SramCampaignReport {
            faults: vec![0; banks],
            first_fault_offset: vec![f64::NEG_INFINITY; banks],
            bits_flipped: 0,
        }
    }

    /// Folds another (disjoint-shard) report in. Counts add, first-fault
    /// offsets take the shallowest — commutative and associative.
    fn merge(&mut self, other: &SramCampaignReport) {
        for i in 0..self.faults.len() {
            self.faults[i] += other.faults[i];
            self.first_fault_offset[i] =
                self.first_fault_offset[i].max(other.first_fault_offset[i]);
        }
        self.bits_flipped += other.bits_flipped;
    }

    /// Fault count (offset points with ≥ 1 flip) for a bank.
    pub fn faults(&self, bank: usize) -> u32 {
        self.faults[bank]
    }

    /// The shallowest offset at which the bank flipped, mV (−∞ if never).
    pub fn first_fault_offset_mv(&self, bank: usize) -> f64 {
        self.first_fault_offset[bank]
    }

    /// Total faulting (bank, offset) points.
    pub fn total_faults(&self) -> u64 {
        self.faults.iter().map(|&f| u64::from(f)).sum()
    }

    /// Total weak-cell bits flipped across the sweep.
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }
}

/// Audits a **naive undervolt** against the SRAM class: every access
/// goes straight to a bank at the full offset, so any bank below its
/// retention margin silently corrupts the data it returns — the SRAM
/// analogue of the Plundervolt scenario.
pub fn audit_sram_naive(
    array: &SramArrayModel,
    offset_mv: f64,
    seed: u64,
    accesses: usize,
) -> AuditOutcome {
    let mut rng = SuitRng::seed_from_u64(seed ^ 0x50AD);
    let mut out = AuditOutcome {
        executed: 0,
        trapped: 0,
        silent_errors: 0,
    };
    for _ in 0..accesses {
        let bank = rng.gen_range(0..array.bank_count());
        let word = rng.u128();
        let (got, _) = array.read_word(bank, word, offset_mv, &mut rng);
        out.executed += 1;
        if got != word {
            out.silent_errors += 1;
        }
    }
    out
}

/// Audits an **SRAM-guarded** system at the same offset. The SRAM-aware
/// §6.9 invariant is: *no live bank operates below its bank-Vmin, or its
/// contents are treated as untrusted*. The guard quarantines every bank
/// whose margin the offset crosses ([`SramArrayModel::faulted_banks`]);
/// an access to a quarantined bank counts as trapped and is re-fetched
/// at the conservative voltage (offset 0), where retention is qualified.
/// Any silent error disproves the extended invariant.
pub fn audit_sram_guarded(
    array: &SramArrayModel,
    offset_mv: f64,
    seed: u64,
    accesses: usize,
) -> AuditOutcome {
    let mut rng = SuitRng::seed_from_u64(seed ^ 0x6A4D);
    let untrusted = array.faulted_banks(offset_mv);
    let mut out = AuditOutcome {
        executed: 0,
        trapped: 0,
        silent_errors: 0,
    };
    for _ in 0..accesses {
        let bank = rng.gen_range(0..array.bank_count());
        let word = rng.u128();
        let effective_offset = if untrusted.binary_search(&bank).is_ok() {
            // Untrusted bank: discard its contents, re-fetch on the
            // conservative curve.
            out.trapped += 1;
            0.0
        } else {
            offset_mv
        };
        let (got, _) = array.read_word(bank, word, effective_offset, &mut rng);
        out.executed += 1;
        if got != word {
            out.silent_errors += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmin::{ChipVminModel, ONSET_WIDTH_MV};

    fn array() -> SramArrayModel {
        SramArrayModel::sample(8, 4, 12.0, 42)
    }

    #[test]
    fn sampling_is_reproducible_and_varies_by_seed() {
        let a = SramArrayModel::sample(4, 2, 12.0, 1);
        let b = SramArrayModel::sample(4, 2, 12.0, 1);
        let c = SramArrayModel::sample(4, 2, 12.0, 2);
        assert_eq!(a, b);
        assert_ne!(a.margin_mv(0), c.margin_mv(0));
        assert_eq!(a.bank_count(), 6);
        assert_eq!(a.bank(0).kind, SramBankKind::Cache);
        assert_eq!(a.bank(5).kind, SramBankKind::Rob);
    }

    #[test]
    fn weak_cell_masks_are_nonzero_and_small() {
        let m = array();
        for i in 0..m.bank_count() {
            let ones = m.bank(i).flip_mask.count_ones();
            assert!((1..=3).contains(&ones), "bank {i}: {ones} weak cells");
        }
    }

    #[test]
    fn sram_family_has_lower_variance_than_instruction_curves() {
        // Same sigma, many seeds: the spread of bank margins must be well
        // below the spread of per-core instruction margins.
        let sigma = 15.0;
        let (mut sram_dev, mut inst_dev, mut n) = (0.0, 0.0, 0);
        for seed in 0..40 {
            let m = SramArrayModel::sample(6, 0, sigma, seed);
            let mean: f64 = (0..6).map(|i| m.margin_mv(i)).sum::<f64>() / 6.0;
            sram_dev += (0..6).map(|i| (m.margin_mv(i) - mean).powi(2)).sum::<f64>() / 6.0;
            let chip = ChipVminModel::sample(6, sigma, seed);
            let imul_mean: f64 = (0..6)
                .map(|c| chip.margin_mv(c, suit_isa::Opcode::Imul))
                .sum::<f64>()
                / 6.0;
            inst_dev += (0..6)
                .map(|c| (chip.margin_mv(c, suit_isa::Opcode::Imul) - imul_mean).powi(2))
                .sum::<f64>()
                / 6.0;
            n += 1;
        }
        let (sram_sd, inst_sd) = ((sram_dev / n as f64).sqrt(), (inst_dev / n as f64).sqrt());
        assert!(
            sram_sd < inst_sd * 0.6,
            "SRAM family not tighter: {sram_sd:.1} vs {inst_sd:.1} mV"
        );
        // And the onset band is sharper by construction.
        const _: () = assert!(SRAM_ONSET_WIDTH_MV < ONSET_WIDTH_MV);
    }

    #[test]
    fn rob_banks_fail_before_cache_banks_on_average() {
        let mut cache = 0.0;
        let mut rob = 0.0;
        for seed in 0..40 {
            let m = SramArrayModel::sample(4, 4, 12.0, seed);
            cache += (0..4).map(|i| m.margin_mv(i)).sum::<f64>();
            rob += (4..8).map(|i| m.margin_mv(i)).sum::<f64>();
        }
        assert!(rob < cache, "ROB margins must sit below cache margins");
    }

    #[test]
    fn fault_probability_shape() {
        let m = SramArrayModel::sample(1, 0, 0.0, 7); // no variation
        let margin = m.margin_mv(0);
        assert_eq!(margin, mean_bank_margin_mv(SramBankKind::Cache));
        assert_eq!(m.fault_probability(0, -(margin - 1.0)), 0.0);
        assert_eq!(m.fault_probability(0, -(margin + 10.0)), 1.0);
        let mid = m.fault_probability(0, -(margin + 3.0));
        assert!((0.0..1.0).contains(&mid) && mid > 0.0, "{mid}");
        assert!(m.fault_probability(0, -(margin + 5.0)) > mid);
    }

    #[test]
    fn faulted_banks_grow_monotonically_with_depth() {
        let m = array();
        let shallow = m.faulted_banks(-140.0);
        let deep = m.faulted_banks(-200.0);
        for b in &shallow {
            assert!(deep.contains(b), "bank {b} vanished at deeper offset");
        }
        assert!(deep.len() >= shallow.len());
        assert_eq!(deep.len(), m.bank_count(), "−200 mV is below every bank");
        assert!(m.faulted_banks(0.0).is_empty());
    }

    #[test]
    fn flips_are_deterministic_per_bank() {
        let m = array();
        let mut rng = SuitRng::seed_from_u64(1);
        // Far below every margin: always flips, always the same cells.
        let (a, fa) = m.read_word(3, 0xFFFF, -400.0, &mut rng);
        let (b, fb) = m.read_word(3, 0xFFFF, -400.0, &mut rng);
        assert!(fa && fb);
        assert_eq!(a, b);
        assert_eq!(a, 0xFFFF ^ m.bank(3).flip_mask);
    }

    #[test]
    fn campaign_is_deterministic_and_thread_count_invariant() {
        let serial = SramCampaign::standard(array(), 9).run_with_threads(1);
        for threads in [2, 4, 8] {
            let parallel = SramCampaign::standard(array(), 9).run_with_threads(threads);
            assert_eq!(serial, parallel, "{threads} threads diverged");
        }
        assert!(serial.total_faults() > 0, "standard sweep must fault");
        assert!(serial.bits_flipped() > 0);
    }

    #[test]
    fn campaign_telemetry_is_thread_count_invariant() {
        let campaign = SramCampaign::standard(array(), 9);
        let tele = Telemetry::recording();
        let serial = campaign.run_with_threads_telemetry(1, &tele);
        let reference = tele.snapshot();
        let banks = campaign.array.bank_count() as u64;
        assert_eq!(reference.counter(Counter::SramBanksSwept), banks);
        assert_eq!(
            reference.counter(Counter::SramBitFlips),
            serial.bits_flipped()
        );
        assert_eq!(reference.hist(Hist::SramFaultsPerBank).count(), banks);
        for threads in [2, 4] {
            let tele = Telemetry::recording();
            let parallel = campaign.run_with_threads_telemetry(threads, &tele);
            assert_eq!(serial, parallel, "{threads} threads diverged");
            assert_eq!(reference, tele.snapshot(), "{threads}-thread telemetry");
        }
    }

    #[test]
    fn no_faults_at_conservative_voltage() {
        let mut campaign = SramCampaign::standard(array(), 1);
        campaign.offsets_mv = vec![0.0, -50.0, -100.0];
        let report = campaign.run();
        // −100 mV sits below every bank margin in this family.
        assert_eq!(report.total_faults(), 0);
    }

    #[test]
    fn guarded_audit_is_clean_where_naive_is_not() {
        let mut naive_errors = 0;
        for seed in 0..10 {
            let m = SramArrayModel::sample(8, 4, 12.0, seed);
            let naive = audit_sram_naive(&m, -160.0, seed, 3000);
            naive_errors += naive.silent_errors;
            let guarded = audit_sram_guarded(&m, -160.0, seed, 3000);
            assert!(guarded.is_secure(), "seed {seed}: {guarded:?}");
            assert!(guarded.trapped > 0, "audit must exercise the quarantine");
        }
        assert!(
            naive_errors > 0,
            "naive SRAM undervolt must eventually flip"
        );
    }

    #[test]
    fn guard_traps_nothing_above_every_margin() {
        let m = array();
        let out = audit_sram_guarded(&m, -50.0, 3, 1000);
        assert!(out.is_secure());
        assert_eq!(out.trapped, 0, "no bank is below margin at −50 mV");
    }
}
