//! Chrome/Perfetto `trace.json` export and in-tree validation.
//!
//! The exporter emits the legacy Chrome JSON trace format (an object with
//! a `traceEvents` array), which `ui.perfetto.dev` and `chrome://tracing`
//! both load. Each [`EventKind`] gets its own track (tid) named via `"M"`
//! metadata events; spans are `"X"` complete events, instants are `"i"`.
//!
//! Timestamps are microseconds. To keep the output **byte-stable** they
//! are rendered from integer picoseconds as exact 6-decimal strings
//! (`ps / 10⁶ . ps % 10⁶`) — no float formatting is involved, so the
//! same snapshot always serializes to the same bytes.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::recorder::{EventKind, TelemetrySnapshot};

/// Renders integer picoseconds as an exact microsecond decimal literal.
fn fmt_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

impl TelemetrySnapshot {
    /// Serializes the retained events as a Chrome/Perfetto `trace.json`
    /// document.
    ///
    /// Events are globally sorted by start time (ties keep record order),
    /// so the emitted timestamps are monotonically non-decreasing — the
    /// property [`validate_perfetto`] checks.
    pub fn to_perfetto_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].start);

        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, item: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&item);
        };

        // One named track per event kind (tid = kind index + 1).
        for k in EventKind::ALL {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"name\":{}}}}}",
                    k.index() + 1,
                    json::escape(k.name()),
                ),
            );
        }

        for &i in &order {
            let e = &self.events[i];
            let tid = e.kind.index() + 1;
            let name = json::escape(e.kind.name());
            let ts = fmt_us(e.start.as_picos());
            let item = match e.dur {
                Some(d) => format!(
                    "{{\"name\":{name},\"cat\":\"suit\",\"ph\":\"X\",\"pid\":0,\
                     \"tid\":{tid},\"ts\":{ts},\"dur\":{},\"args\":{{\"arg\":{}}}}}",
                    fmt_us(d.as_picos()),
                    e.arg,
                ),
                None => format!(
                    "{{\"name\":{name},\"cat\":\"suit\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":0,\"tid\":{tid},\"ts\":{ts},\"args\":{{\"arg\":{}}}}}",
                    e.arg,
                ),
            };
            push(&mut out, item);
        }
        out.push_str("]}");
        out
    }
}

/// What [`validate_perfetto`] found in a well-formed trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PerfettoStats {
    /// Total entries in `traceEvents` (including metadata).
    pub total: usize,
    /// `"X"` complete (span) events.
    pub spans: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"M"` metadata events.
    pub metadata: usize,
    /// Occurrences per event name (metadata excluded).
    pub names: BTreeMap<String, usize>,
}

impl PerfettoStats {
    /// Occurrences of event `name` (0 if absent).
    pub fn count(&self, name: &str) -> usize {
        self.names.get(name).copied().unwrap_or(0)
    }
}

/// Parses `src` with the in-tree JSON parser and checks the structural
/// invariants the exporter guarantees:
///
/// * top level is an object with a `traceEvents` array;
/// * every entry is an object with a string `name` and a `ph` of
///   `"X"`/`"i"`/`"M"`;
/// * non-metadata entries carry a numeric `ts`; `"X"` entries also a
///   numeric `dur`;
/// * `ts` is monotonically non-decreasing in array order.
pub fn validate_perfetto(src: &str) -> Result<PerfettoStats, String> {
    let doc = json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;

    let mut stats = PerfettoStats {
        total: events.len(),
        ..PerfettoStats::default()
    };
    let mut last_ts = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string name"))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "M" => {
                stats.metadata += 1;
                continue;
            }
            "X" => {
                stats.spans += 1;
                e.get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: span without numeric dur"))?;
            }
            "i" => stats.instants += 1,
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric ts"))?;
        if ts < last_ts {
            return Err(format!(
                "event {i}: ts {ts} precedes previous ts {last_ts} — timeline not monotonic"
            ));
        }
        last_ts = ts;
        *stats.names.entry(name.to_string()).or_insert(0) += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{EventKind, Telemetry};
    use suit_isa::{SimDuration, SimTime};

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let tele = Telemetry::recording();
        tele.instant(EventKind::CurveSwitch, t(5), 2);
        tele.span(EventKind::Stall, t(5), t(32), 0);
        tele.instant(EventKind::DoTrap, t(2), 0);
        tele.span(EventKind::Residency, t(0), t(5), 1);
        let json = tele.snapshot().to_perfetto_json();

        let stats = validate_perfetto(&json).expect("exporter output must validate");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 2);
        assert_eq!(stats.metadata, EventKind::COUNT);
        assert_eq!(stats.count("curve_switch"), 1);
        assert_eq!(stats.count("do_trap"), 1);
        assert_eq!(stats.count("stall"), 1);
        assert_eq!(stats.count("nonexistent"), 0);
    }

    #[test]
    fn timestamps_are_sorted_and_exact() {
        let tele = Telemetry::recording();
        // Recorded out of order; export must sort by start time.
        tele.instant(EventKind::DeadlineFire, t(9), 0);
        tele.instant(EventKind::DoTrap, SimTime::from_picos(1_234_567), 0);
        let json = tele.snapshot().to_perfetto_json();
        validate_perfetto(&json).unwrap();
        // 1_234_567 ps = 1.234567 µs, rendered exactly.
        assert!(json.contains("\"ts\":1.234567"), "{json}");
        assert!(json.contains("\"ts\":9.000000"));
    }

    #[test]
    fn export_is_byte_stable() {
        let mk = || {
            let tele = Telemetry::recording();
            tele.span(EventKind::EmulationCall, t(1), t(2), 7);
            tele.instant(EventKind::ThrashLockout, t(3), 0);
            tele.snapshot().to_perfetto_json()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn validator_rejects_structural_breakage() {
        assert!(validate_perfetto("not json").is_err());
        assert!(validate_perfetto("{}").is_err());
        assert!(validate_perfetto("{\"traceEvents\":3}").is_err());
        // Missing ph.
        assert!(validate_perfetto("{\"traceEvents\":[{\"name\":\"x\"}]}").is_err());
        // Span without dur.
        assert!(
            validate_perfetto("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1}]}")
                .is_err()
        );
        // Non-monotonic timeline.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"i\",\"ts\":5},\
            {\"name\":\"b\",\"ph\":\"i\",\"ts\":4}]}";
        let err = validate_perfetto(bad).unwrap_err();
        assert!(err.contains("monotonic"), "{err}");
    }

    #[test]
    fn empty_snapshot_exports_metadata_only() {
        let json = Telemetry::recording().snapshot().to_perfetto_json();
        let stats = validate_perfetto(&json).unwrap();
        assert_eq!(stats.spans + stats.instants, 0);
        assert_eq!(stats.metadata, EventKind::COUNT);
    }
}
