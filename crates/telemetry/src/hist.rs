//! Log₂-bucketed histograms with atomic observation.
//!
//! Values span nine orders of magnitude (a 200 ps cycle to multi-second
//! episodes), so buckets are powers of two: value `v` lands in bucket
//! `⌊log₂ v⌋ + 1` (bucket 0 holds exact zeros). 65 buckets cover the full
//! `u64` range. Quantiles read out as the *upper edge* of the bucket the
//! rank falls in — within 2× of the exact order statistic by
//! construction, and exact for the maximum (tracked separately).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 for zero, buckets 1..=64 for ⌊log₂⌋ 0..=63.
pub const BUCKETS: usize = 65;

/// The bucket index of a value.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of a bucket (`u64::MAX` for the last).
pub fn bucket_upper(idx: usize) -> u64 {
    match idx {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A thread-safe histogram: all mutation is commutative atomic addition
/// (plus an atomic max), so concurrent observers from any number of
/// threads produce the same final state.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data histogram state: mergeable, comparable, readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Quantile readout, `q` in `[0, 1]`: the upper edge of the bucket
    /// holding the `⌈q · n⌉`-th smallest observation (the exact observed
    /// maximum when that bucket is the last occupied one). Within one
    /// power of two of the exact order statistic.
    ///
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile needs q in [0, 1]");
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        let mut last_occupied = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            last_occupied = i;
            seen += c;
            if seen >= rank {
                // The max lives in the top occupied bucket; report it
                // exactly there instead of the (looser) bucket edge.
                let edge = bucket_upper(i);
                return if self.buckets[i + 1..].iter().all(|&c| c == 0) {
                    self.max
                        .min(edge)
                        .max(if i == 0 { 0 } else { edge.min(self.max) })
                } else {
                    edge
                };
            }
        }
        bucket_upper(last_occupied)
    }

    /// Folds another histogram into this one. Bucket counts and sums add,
    /// maxima take the max — commutative and associative, so merge order
    /// cannot affect the result.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_rng::{Rng, SuitRng};

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX / 2, u64::MAX] {
            assert!(v <= bucket_upper(bucket_of(v)), "{v}");
        }
    }

    #[test]
    fn quantiles_match_sorted_reference_within_a_bucket() {
        // The satellite check: quantiles against a sorted-reference
        // computation on suit-rng-seeded samples. The histogram readout
        // must land in the same log bucket as the exact order statistic
        // (i.e. within 2×), and the max must be exact.
        let mut rng = SuitRng::seed_from_u64(0x7e1e);
        for scale in [100u64, 100_000, 10_000_000_000] {
            let mut hist = HistSnapshot::default();
            let mut samples: Vec<u64> = (0..5_000).map(|_| rng.gen_range(0..scale)).collect();
            for &s in &samples {
                let mut one = HistSnapshot::default();
                one.buckets[bucket_of(s)] += 1;
                one.sum += s;
                one.max = s;
                hist.merge(&one);
            }
            samples.sort_unstable();
            for q in [0.5, 0.9, 0.99] {
                let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
                let exact = samples[rank];
                let est = hist.quantile(q);
                assert!(est >= exact, "q{q}: est {est} < exact {exact}");
                assert_eq!(
                    bucket_of(est.max(1)),
                    bucket_of(exact.max(1)),
                    "q{q}: est {est} vs exact {exact} crossed a bucket"
                );
            }
            assert_eq!(hist.quantile(1.0), *samples.last().unwrap(), "max is exact");
        }
    }

    #[test]
    fn atomic_and_plain_agree() {
        let atomic = AtomicHistogram::default();
        let mut plain = HistSnapshot::default();
        for v in [0u64, 1, 5, 5, 1024, 999_999_999] {
            atomic.observe(v);
            plain.buckets[bucket_of(v)] += 1;
            plain.sum += v;
            plain.max = plain.max.max(v);
        }
        assert_eq!(atomic.snapshot(), plain);
        assert_eq!(plain.count(), 6);
        assert!((plain.mean() - (1 + 5 + 5 + 1024 + 999_999_999) as f64 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = HistSnapshot::default();
        a.buckets[3] = 2;
        a.sum = 10;
        a.max = 7;
        let mut b = HistSnapshot::default();
        b.buckets[10] = 1;
        b.sum = 600;
        b.max = 600;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.max, 600);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = HistSnapshot::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "q in [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let _ = HistSnapshot::default().quantile(1.5);
    }
}
