//! The recorder, the cheap [`Telemetry`] handle, and mergeable snapshots.
//!
//! Identity is fixed at compile time: counters, histograms, and event
//! kinds are enums with dense indices, so a hook is an array index plus a
//! relaxed atomic — no string hashing, no registration, no allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use suit_isa::SimTime;

use crate::hist::{AtomicHistogram, HistSnapshot};
use crate::ring::{Event, EventRing};

/// Default event-ring capacity for [`Telemetry::recording`].
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// Defines a dense-index id enum with `COUNT`, `ALL`, `index()` and a
/// stable snake_case `name()` used by the summary table and trace export.
macro_rules! id_enum {
    (
        $(#[$meta:meta])*
        $vis:vis enum $name:ident {
            $( $(#[$vmeta:meta])* $variant:ident => $label:literal, )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        $vis enum $name {
            $( $(#[$vmeta])* $variant, )*
        }

        impl $name {
            /// Number of variants.
            pub const COUNT: usize = [$( $name::$variant ),*].len();

            /// Every variant, in declaration order.
            pub const ALL: [$name; Self::COUNT] = [$( $name::$variant ),*];

            /// Dense positional index (declaration order).
            #[inline]
            pub fn index(self) -> usize {
                self as usize
            }

            /// Stable snake_case label.
            pub fn name(self) -> &'static str {
                match self { $( $name::$variant => $label, )* }
            }
        }
    };
}

id_enum! {
    /// Monotonic `u64` tallies. The `Time*Ps` counters accumulate the
    /// same per-step durations the engine adds to its own aggregates, so
    /// residency re-derived from telemetry matches `RunResult` exactly.
    pub enum Counter {
        /// `#DO` (disabled-opcode) exceptions taken.
        DoTraps => "do_traps",
        /// Instructions emulated by the `#DO` handler.
        Emulations => "emulations",
        /// Deadline-timer expiries that returned to the efficient curve.
        DeadlineFires => "deadline_fires",
        /// Thrash-prevention lockouts (trap bursts pinning the
        /// conservative curve).
        ThrashLockouts => "thrash_lockouts",
        /// Per-burst operating-strategy decisions taken in the handler.
        StrategyDecisions => "strategy_decisions",
        /// DVFS curve switches requested (any target).
        CurveSwitches => "curve_switches",
        /// Curve switches targeting the efficient curve.
        CurveSwitchToEfficient => "curve_switch_to_efficient",
        /// Curve switches targeting a conservative curve.
        CurveSwitchToConservative => "curve_switch_to_conservative",
        /// MSR writes that reprogram a DVFS curve.
        MsrCurveWrites => "msr_curve_writes",
        /// MSR writes that change the disabled-instruction-class mask.
        MsrDisableWrites => "msr_disable_writes",
        /// Adaptive-chooser probe windows opened (§6.8).
        AdaptiveProbes => "adaptive_probes",
        /// Adaptive-chooser strategy flips committed (§6.8).
        AdaptiveFlips => "adaptive_flips",
        /// Voltage/frequency transition stalls.
        Stalls => "stalls",
        /// Simulated picoseconds spent on the efficient curve.
        TimeEfficientPs => "time_efficient_ps",
        /// Simulated picoseconds on the conservative curve at reduced
        /// frequency.
        TimeConservativeFreqPs => "time_conservative_freq_ps",
        /// Simulated picoseconds on the conservative curve at raised
        /// voltage.
        TimeConservativeVoltPs => "time_conservative_volt_ps",
        /// Simulated picoseconds stalled in V/f transitions.
        TimeStallPs => "time_stall_ps",
        /// Faults injected across the fault campaign.
        FaultsInjected => "faults_injected",
        /// Campaign shards executed.
        CampaignShards => "campaign_shards",
        /// Out-of-order core: branch mispredictions.
        OooMispredicts => "ooo_mispredicts",
        /// Out-of-order core: L1D misses.
        OooL1dMisses => "ooo_l1d_misses",
        /// Out-of-order core: cycles stalled with the ROB full.
        OooRobStallCycles => "ooo_rob_stall_cycles",
        /// `suit-serve`: requests admitted to an endpoint handler.
        ServeRequests => "serve_requests",
        /// `suit-serve`: requests rejected with `429` (admission queue
        /// full — explicit backpressure).
        ServeRejected => "serve_rejected",
        /// `suit-serve`: requests refused with a `4xx` validation or
        /// parse error (`400`/`404`/`405`/`413`/`431`).
        ServeBadRequests => "serve_bad_requests",
        /// `suit-serve`: requests whose deadline expired (`408`).
        ServeDeadlineExpired => "serve_deadline_expired",
        /// `suit-serve`: compute requests answered from the result cache
        /// (including `304` revalidations).
        ServeCacheHits => "serve_cache_hits",
        /// `suit-serve`: compute requests that missed the cache and led
        /// a computation.
        ServeCacheMisses => "serve_cache_misses",
        /// `suit-serve`: requests coalesced onto an identical in-flight
        /// computation (N identical requests, one computation).
        ServeCacheCoalesced => "serve_cache_coalesced",
        /// `suit-serve`: cache entries evicted by the LRU bounds.
        ServeCacheEvictions => "serve_cache_evictions",
        /// `suit-serve`: `304 Not Modified` answers to `If-None-Match`
        /// revalidations.
        ServeNotModified => "serve_not_modified",
        /// `suit-serve`: trace containers accepted into the trace store
        /// (idempotent re-uploads count separately — see
        /// `serve_trace_dedup`).
        ServeTraceUploads => "serve_trace_uploads",
        /// `suit-serve`: uploads answered with the existing entry (the
        /// content hash already names a stored trace).
        ServeTraceDedup => "serve_trace_dedup",
        /// `suit-serve`: uploads refused with `413` because the bounded
        /// trace store is full (entries or bytes).
        ServeTraceStoreFull => "serve_trace_store_full",
        /// Engine: event-loop quanta that advanced time (a non-zero `dt`
        /// between consecutive scheduler events).
        EngineQuanta => "engine_quanta",
        /// Engine: per-core advance steps across all quanta. Finished
        /// (idle-parked) cores are skipped by the scheduler, so an idle
        /// window contributes zero steps — `core_steps` counts only
        /// cores that actually executed during a quantum.
        CoreSteps => "core_steps",
        /// Engine: heap (re)allocations of the scheduler's reusable
        /// scratch state. Counted only when a buffer grows, so a steady
        /// inner quantum loop must keep this at its warm-up value — the
        /// equivalence suite asserts the loop is allocation-free. A
        /// worker-*thread* fact, not a simulation fact: it is dropped by
        /// [`TelemetrySnapshot::merge_shard`], so only serial
        /// same-thread snapshots carry it.
        EngineScratchAllocs => "engine_scratch_allocs",
        /// SRAM campaign: bank shards swept.
        SramBanksSwept => "sram_banks_swept",
        /// SRAM campaign: weak-cell bits flipped across all faulting
        /// (bank, offset) points.
        SramBitFlips => "sram_bit_flips",
        /// Scrooge search: economic-objective points evaluated (grid +
        /// refinement candidates).
        ScroogePointsEvaluated => "scrooge_points_evaluated",
    }
}

id_enum! {
    /// Log₂-bucketed distributions with p50/p90/p99/max readout.
    pub enum Hist {
        /// Duration of each V/f transition stall, in picoseconds.
        StallPs => "stall_ps",
        /// Length of each conservative-curve episode (switch-away to
        /// switch-back), in picoseconds.
        ConservativeEpisodePs => "conservative_episode_ps",
        /// Duration of each emulation call, in picoseconds.
        EmulationCallPs => "emulation_call_ps",
        /// Faults injected per campaign shard.
        FaultsPerShard => "faults_per_shard",
        /// Undervolting depth (millivolts below nominal) at each run's
        /// first fault.
        FirstFaultDepthMv => "first_fault_depth_mv",
        /// `suit-serve`: `POST /v1/simulate` wall-clock latency, µs
        /// (queue wait + execution).
        ServeSimulateUs => "serve_simulate_us",
        /// `suit-serve`: `POST /v1/batch` wall-clock latency, µs.
        ServeBatchUs => "serve_batch_us",
        /// `suit-serve`: `POST /v1/faults` wall-clock latency, µs.
        ServeFaultsUs => "serve_faults_us",
        /// `suit-serve`: `GET /v1/metrics` wall-clock latency, µs.
        ServeMetricsUs => "serve_metrics_us",
        /// `suit-serve`: wall-clock latency of cache *hits* (lookup +
        /// serialization), µs — the microseconds-not-seconds pin for
        /// hot repeated queries.
        ServeCacheHitUs => "serve_cache_hit_us",
        /// `suit-serve`: `POST /v1/trace` wall-clock latency, µs
        /// (container validation + store insert).
        ServeTraceUploadUs => "serve_trace_upload_us",
        /// `suit-serve`: `POST /v1/simulate-trace` wall-clock latency,
        /// µs (queue wait + streamed replay).
        ServeSimulateTraceUs => "serve_simulate_trace_us",
        /// SRAM campaign: retention faults observed per bank shard.
        SramFaultsPerBank => "sram_faults_per_bank",
        /// `suit-serve`: `POST /v1/scenario` wall-clock latency, µs
        /// (queue wait + scenario execution).
        ServeScenarioUs => "serve_scenario_us",
    }
}

id_enum! {
    /// Typed timeline events (ring-buffered; see [`crate::ring`]).
    pub enum EventKind {
        /// Instant: a DVFS curve switch was requested (`arg` = target
        /// operating-point index).
        CurveSwitch => "curve_switch",
        /// Span: contiguous residency at one operating point (`arg` =
        /// point index).
        Residency => "residency",
        /// Instant: `#DO` exception entry.
        DoTrap => "do_trap",
        /// Instant: `#DO` exception exit.
        DoTrapExit => "do_trap_exit",
        /// Span: a V/f transition stall.
        Stall => "stall",
        /// Instant: the deadline timer fired.
        DeadlineFire => "deadline_fire",
        /// Instant: thrash prevention locked the conservative curve in.
        ThrashLockout => "thrash_lockout",
        /// Instant: a per-burst operating-strategy decision (`arg` =
        /// strategy index).
        StrategyDecision => "strategy_decision",
        /// Span: one emulated instruction inside the `#DO` handler.
        EmulationCall => "emulation_call",
    }
}

/// The shared recording state behind an enabled [`Telemetry`] handle.
///
/// All counter/histogram mutation is relaxed-atomic and commutative;
/// the event ring takes a mutex (events are ordered, so only use a
/// *shared* recorder from one thread — give each worker its own recorder
/// and [merge](TelemetrySnapshot::merge_shard) position-ordered, or only
/// record commutative counters/histograms on a shared one).
#[derive(Debug)]
pub struct Recorder {
    counters: [AtomicU64; Counter::COUNT],
    hists: [AtomicHistogram; Hist::COUNT],
    ring: Mutex<EventRing>,
}

impl Recorder {
    /// Creates a recorder whose event ring holds `event_capacity` events.
    pub fn new(event_capacity: usize) -> Self {
        Recorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| AtomicHistogram::default()),
            ring: Mutex::new(EventRing::new(event_capacity)),
        }
    }

    fn push_event(&self, e: Event) {
        self.ring.lock().expect("event ring poisoned").push(e);
    }
}

/// The hook handle every instrumented subsystem holds.
///
/// Cloning is an `Arc` bump (or a no-op when disabled). A disabled
/// handle contains no recorder, so each hook below is one `Option`
/// branch — the no-op fast path the `telemetry_overhead` bench pins.
#[derive(Debug, Clone, Default)]
pub struct Telemetry(Option<Arc<Recorder>>);

impl Telemetry {
    /// The disabled handle: every hook is a single not-taken branch.
    #[inline]
    pub fn off() -> Self {
        Telemetry(None)
    }

    /// An enabled handle with the default event-ring capacity.
    pub fn recording() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled handle whose event ring holds `events` events.
    pub fn with_capacity(events: usize) -> Self {
        Telemetry(Some(Arc::new(Recorder::new(events))))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Increments `c` by one.
    #[inline]
    pub fn count(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Increments `c` by `n`.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(r) = &self.0 {
            r.counters[c.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&self, h: Hist, v: u64) {
        if let Some(r) = &self.0 {
            r.hists[h.index()].observe(v);
        }
    }

    /// Records an instant event at `at`.
    #[inline]
    pub fn instant(&self, kind: EventKind, at: SimTime, arg: u64) {
        if let Some(r) = &self.0 {
            r.push_event(Event {
                kind,
                start: at,
                dur: None,
                arg,
            });
        }
    }

    /// Records a span event from `start` to `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes `start` (simulated time never reverses).
    #[inline]
    pub fn span(&self, kind: EventKind, start: SimTime, end: SimTime, arg: u64) {
        if let Some(r) = &self.0 {
            r.push_event(Event {
                kind,
                start,
                dur: Some(end.since(start)),
                arg,
            });
        }
    }

    /// A plain-data copy of everything recorded so far (empty for a
    /// disabled handle).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.0 {
            None => TelemetrySnapshot::default(),
            Some(r) => {
                let ring = r.ring.lock().expect("event ring poisoned");
                TelemetrySnapshot {
                    counters: r
                        .counters
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                    hists: r.hists.iter().map(AtomicHistogram::snapshot).collect(),
                    events: ring.to_vec(),
                    events_dropped: ring.dropped(),
                }
            }
        }
    }
}

/// Plain-data telemetry state: comparable, mergeable, exportable.
///
/// Obtained from [`Telemetry::snapshot`]; shard snapshots fold together
/// with [`merge_shard`](TelemetrySnapshot::merge_shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// One slot per [`Counter`], in declaration order.
    counters: Vec<u64>,
    /// One slot per [`Hist`], in declaration order.
    hists: Vec<HistSnapshot>,
    /// Retained events, oldest first (concatenated shard-ordered after a
    /// merge).
    pub events: Vec<Event>,
    /// Events lost to ring overwrite (summed across merged shards).
    pub events_dropped: u64,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            counters: vec![0; Counter::COUNT],
            hists: vec![HistSnapshot::default(); Hist::COUNT],
            events: Vec::new(),
            events_dropped: 0,
        }
    }
}

impl TelemetrySnapshot {
    /// The value of counter `c`.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// The state of histogram `h`.
    pub fn hist(&self, h: Hist) -> &HistSnapshot {
        &self.hists[h.index()]
    }

    /// Number of retained events of `kind`.
    pub fn event_count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Folds a shard's snapshot into this one. Counters and bucket
    /// counts add, maxima max — commutative and associative — and events
    /// concatenate in call order, so merging shards **position-ordered**
    /// (shard 0 first, then 1, …) yields the same bytes at any worker
    /// thread count.
    ///
    /// One exception: [`Counter::EngineScratchAllocs`] is dropped at
    /// merge. It records a *worker-thread* fact (this thread's reusable
    /// scratch had to grow), not a simulation fact — under dynamic work
    /// stealing, which shard's run lands on a cold thread is scheduling
    /// noise, so summing it would break the thread-count-invariance
    /// contract above. Read it from a serial, same-thread snapshot (as
    /// the engine-equivalence suite does), never from a merged one.
    pub fn merge_shard(&mut self, shard: &TelemetrySnapshot) {
        for (i, (a, b)) in self
            .counters
            .iter_mut()
            .zip(shard.counters.iter())
            .enumerate()
        {
            if i != Counter::EngineScratchAllocs.index() {
                *a += b;
            }
        }
        for (a, b) in self.hists.iter_mut().zip(shard.hists.iter()) {
            a.merge(b);
        }
        self.events.extend_from_slice(&shard.events);
        self.events_dropped += shard.events_dropped;
    }

    /// A deterministic human-readable summary table (nonzero counters,
    /// nonempty histograms, event tallies).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("== telemetry summary ==\ncounters:\n");
        for c in Counter::ALL {
            let v = self.counter(c);
            if v != 0 {
                let _ = writeln!(out, "  {:<28} {v}", c.name());
            }
        }
        out.push_str("histograms:\n");
        for h in Hist::ALL {
            let s = self.hist(h);
            if s.count() != 0 {
                let _ = writeln!(
                    out,
                    "  {:<24} n={} mean={:.1} p50={} p90={} p99={} max={}",
                    h.name(),
                    s.count(),
                    s.mean(),
                    s.quantile(0.5),
                    s.quantile(0.9),
                    s.quantile(0.99),
                    s.max,
                );
            }
        }
        let _ = writeln!(
            out,
            "events: {} retained, {} dropped",
            self.events.len(),
            self.events_dropped
        );
        for k in EventKind::ALL {
            let n = self.event_count(k);
            if n != 0 {
                let _ = writeln!(out, "  {:<24} {n}", k.name());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_isa::SimDuration;

    #[test]
    fn disabled_handle_records_nothing() {
        let tele = Telemetry::off();
        assert!(!tele.is_enabled());
        tele.count(Counter::DoTraps);
        tele.observe(Hist::StallPs, 42);
        tele.instant(EventKind::DoTrap, SimTime::ZERO, 0);
        let snap = tele.snapshot();
        assert_eq!(snap, TelemetrySnapshot::default());
        assert_eq!(snap.counter(Counter::DoTraps), 0);
    }

    #[test]
    fn enabled_handle_records_everything() {
        let tele = Telemetry::recording();
        assert!(tele.is_enabled());
        tele.count(Counter::DoTraps);
        tele.add(Counter::FaultsInjected, 5);
        tele.observe(Hist::StallPs, 27_000_000);
        let t0 = SimTime::from_picos(100);
        tele.instant(EventKind::CurveSwitch, t0, 2);
        tele.span(EventKind::Stall, t0, t0 + SimDuration::from_micros(27), 0);
        let snap = tele.snapshot();
        assert_eq!(snap.counter(Counter::DoTraps), 1);
        assert_eq!(snap.counter(Counter::FaultsInjected), 5);
        assert_eq!(snap.hist(Hist::StallPs).count(), 1);
        assert_eq!(snap.hist(Hist::StallPs).max, 27_000_000);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.event_count(EventKind::CurveSwitch), 1);
        assert_eq!(snap.events[1].dur, Some(SimDuration::from_micros(27)));
    }

    #[test]
    fn clones_share_the_recorder() {
        let tele = Telemetry::recording();
        let clone = tele.clone();
        clone.count(Counter::Emulations);
        assert_eq!(tele.snapshot().counter(Counter::Emulations), 1);
    }

    #[test]
    fn merge_is_position_ordered_and_counter_commutative() {
        let mk = |n: u64, ps: u64| {
            let t = Telemetry::recording();
            t.add(Counter::DoTraps, n);
            t.observe(Hist::StallPs, ps);
            t.instant(EventKind::DoTrap, SimTime::from_picos(ps), n);
            t.snapshot()
        };
        let shards = [mk(1, 10), mk(2, 20), mk(3, 30)];

        // Position-ordered merge, two different groupings (as different
        // thread counts would chunk it): identical results.
        let mut flat = TelemetrySnapshot::default();
        for s in &shards {
            flat.merge_shard(s);
        }
        let mut grouped = TelemetrySnapshot::default();
        let mut left = TelemetrySnapshot::default();
        left.merge_shard(&shards[0]);
        left.merge_shard(&shards[1]);
        grouped.merge_shard(&left);
        grouped.merge_shard(&shards[2]);
        assert_eq!(flat, grouped);
        assert_eq!(flat.summary(), grouped.summary());
        assert_eq!(flat.counter(Counter::DoTraps), 6);
        assert_eq!(flat.events.len(), 3);
        assert_eq!(
            flat.events.iter().map(|e| e.arg).collect::<Vec<_>>(),
            [1, 2, 3]
        );
    }

    #[test]
    fn merge_drops_worker_thread_scratch_counter() {
        // EngineScratchAllocs records which worker thread ran cold — a
        // scheduling fact, so it must not survive into merged snapshots.
        let t = Telemetry::recording();
        t.add(Counter::EngineScratchAllocs, 3);
        t.add(Counter::DoTraps, 5);
        let shard = t.snapshot();
        let mut merged = TelemetrySnapshot::default();
        merged.merge_shard(&shard);
        merged.merge_shard(&shard);
        assert_eq!(merged.counter(Counter::DoTraps), 10);
        assert_eq!(merged.counter(Counter::EngineScratchAllocs), 0);
    }

    #[test]
    fn id_enums_are_dense_and_named() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
    }

    #[test]
    fn summary_lists_only_touched_ids() {
        let tele = Telemetry::recording();
        tele.count(Counter::DeadlineFires);
        let s = tele.snapshot().summary();
        assert!(s.contains("deadline_fires"));
        assert!(!s.contains("ooo_mispredicts"));
    }
}
