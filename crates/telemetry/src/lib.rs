//! # suit-telemetry
//!
//! The workspace's observability layer. The paper's whole evaluation is
//! built from *internal* event streams — curve switches, `#DO` traps,
//! deadline expiries, thrash-prevention lockouts, stall windows (Figs.
//! 5–7, §6.4 residency) — yet simulators naturally expose only final
//! aggregates. This crate gives every subsystem a first-class place to
//! put those streams:
//!
//! * **Counters** ([`Counter`]) — atomic `u64` tallies, one per named
//!   quantity (curve switches per target, `#DO` traps, MSR writes,
//!   per-point residency time in picoseconds, …).
//! * **Histograms** ([`Hist`]) — log₂-bucketed distributions with
//!   p50/p90/p99/max readout (stall durations, conservative-episode
//!   lengths, per-shard fault counts).
//! * **Events** ([`Event`]) — a bounded ring buffer of typed
//!   spans/instants carrying simulated-time timestamps, exportable as a
//!   Chrome/Perfetto `trace.json` ([`TelemetrySnapshot::to_perfetto_json`])
//!   viewable in `ui.perfetto.dev`.
//!
//! ## The handle and the no-op fast path
//!
//! Hooks go through a cheap, cloneable [`Telemetry`] handle. A disabled
//! handle ([`Telemetry::off`]) holds no recorder at all, so every hook is
//! a single `Option` branch — the hot simulator loops pay one predictable
//! branch when observability is off (pinned by the `telemetry_overhead`
//! bench in `suit-bench`).
//!
//! ## Determinism
//!
//! Recorders shard like every other campaign structure in this
//! workspace: one recorder per unit of work (or one shared recorder whose
//! mutations are all commutative), snapshots merged **position-ordered**
//! with commutative/associative ops (counters add, histogram buckets add,
//! maxima max, events concatenate in shard order). Merged telemetry is
//! therefore byte-identical at any worker-thread count, preserving the
//! `tests/determinism.rs` guarantee.
//!
//! ```
//! use suit_isa::{SimDuration, SimTime};
//! use suit_telemetry::{Counter, EventKind, Telemetry};
//!
//! let tele = Telemetry::recording();
//! let t0 = SimTime::ZERO;
//! tele.count(Counter::DoTraps);
//! tele.span(EventKind::Stall, t0, t0 + SimDuration::from_micros(27), 0);
//! let snap = tele.snapshot();
//! assert_eq!(snap.counter(Counter::DoTraps), 1);
//! assert!(snap.to_perfetto_json().contains("\"stall\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod perfetto;
pub mod recorder;
pub mod ring;

pub use hist::HistSnapshot;
pub use perfetto::{validate_perfetto, PerfettoStats};
pub use recorder::{Counter, EventKind, Hist, Recorder, Telemetry, TelemetrySnapshot};
pub use ring::Event;
