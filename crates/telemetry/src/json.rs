//! A minimal in-tree JSON parser.
//!
//! Exists so the Perfetto exporter can be *validated* without external
//! crates: CI round-trips every emitted `trace.json` through this parser
//! and checks structure (see [`crate::perfetto::validate_perfetto`]).
//! It is a strict recursive-descent parser over the JSON grammar —
//! small, not fast, and that is fine for validation workloads.

/// A parsed JSON value. Object keys keep their source order (JSON objects
/// are unordered per spec, but order preservation makes validation output
/// deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as `(key, value)` pairs in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth cap: deeper documents are rejected rather than risking
/// stack exhaustion (our own traces nest 4 levels).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode when both halves are
                            // present, otherwise substitute U+FFFD.
                            if (0xD800..0xDC00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                } else {
                                    out.push('\u{FFFD}');
                                    out.push(char::from_u32(lo).unwrap_or('\u{FFFD}'));
                                }
                            } else {
                                out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte 0x{c:02x} in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // encoding is already valid).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&rest[..len]).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Escapes `s` as a JSON string literal (including the quotes). The
/// exporter's counterpart to [`parse`].
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": 2}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(2.0));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
        // Surrogate pair for 😀 (U+1F600).
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "line\nbreak\ttab",
            "unicode é😀",
            "",
        ] {
            let lit = escape(s);
            assert_eq!(parse(&lit).unwrap().as_str(), Some(s), "{lit}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
