//! Bounded event ring buffer.
//!
//! Traces of long runs can produce millions of events; the ring keeps
//! memory bounded by overwriting the *oldest* events once capacity is
//! reached, while counting how many were lost. Counters and histograms
//! (which never drop) remain exact regardless of ring pressure — the ring
//! only bounds the *timeline* detail exported to Perfetto.

use suit_isa::{SimDuration, SimTime};

use crate::recorder::EventKind;

/// One recorded event: an instant (`dur == None`) or a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// When it happened (span start for spans).
    pub start: SimTime,
    /// Span length; `None` marks an instant event.
    pub dur: Option<SimDuration>,
    /// Kind-specific payload (e.g. the target operating-point index for a
    /// curve switch, the chosen strategy for a strategy decision).
    pub arg: u64,
}

/// A fixed-capacity ring of [`Event`]s with overwrite-oldest semantics.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Next write position (wraps at `cap` once full).
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl EventRing {
    /// Creates a ring holding at most `cap` events (`cap == 0` records
    /// nothing and counts every push as dropped).
    pub fn new(cap: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(cap.min(1024)),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest if the ring is full.
    pub fn push(&mut self, e: Event) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(e);
            self.head = self.buf.len() % self.cap;
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten (or discarded at `cap == 0`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        if self.buf.len() < self.cap || self.cap == 0 {
            self.buf.clone()
        } else {
            // Full ring: the oldest event sits at `head`.
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ps: u64) -> Event {
        Event {
            kind: EventKind::Stall,
            start: SimTime::from_picos(ps),
            dur: None,
            arg: ps,
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut ring = EventRing::new(4);
        for i in 0..4 {
            ring.push(ev(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0);
        let order: Vec<u64> = ring.to_vec().iter().map(|e| e.arg).collect();
        assert_eq!(order, [0, 1, 2, 3]);

        // Two more pushes evict the two oldest.
        ring.push(ev(4));
        ring.push(ev(5));
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 2);
        let order: Vec<u64> = ring.to_vec().iter().map(|e| e.arg).collect();
        assert_eq!(order, [2, 3, 4, 5]);
    }

    #[test]
    fn wraps_repeatedly() {
        let mut ring = EventRing::new(3);
        for i in 0..10 {
            ring.push(ev(i));
        }
        assert_eq!(ring.dropped(), 7);
        let order: Vec<u64> = ring.to_vec().iter().map(|e| e.arg).collect();
        assert_eq!(order, [7, 8, 9]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut ring = EventRing::new(0);
        ring.push(ev(1));
        ring.push(ev(2));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 2);
        assert!(ring.to_vec().is_empty());
    }

    #[test]
    fn partial_ring_keeps_insertion_order() {
        let mut ring = EventRing::new(8);
        for i in 0..5 {
            ring.push(ev(i));
        }
        let order: Vec<u64> = ring.to_vec().iter().map(|e| e.arg).collect();
        assert_eq!(order, [0, 1, 2, 3, 4]);
        assert!(!ring.is_empty());
    }
}
