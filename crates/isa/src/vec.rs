//! A 128-bit SIMD value with typed lane views.
//!
//! [`Vec128`] is the data type the emulation library (`suit-emu`) operates
//! on: the OS emulation handlers of §3.4 replace a disabled SIMD or AES
//! instruction with scalar code over this value. It is stored as a single
//! little-endian `u128`, matching x86 XMM register layout, with accessors
//! for the 64/32/16/8-bit lane interpretations.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitXor, Not};

/// A 128-bit value with x86 XMM lane semantics (little-endian lane order:
/// lane 0 is the least significant).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Vec128(u128);

impl Vec128 {
    /// The all-zeros vector.
    pub const ZERO: Vec128 = Vec128(0);
    /// The all-ones vector.
    pub const ONES: Vec128 = Vec128(u128::MAX);

    /// Creates a vector from a raw `u128` (lane 0 in the low bits).
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        Vec128(v)
    }

    /// The raw `u128` representation.
    #[inline]
    pub const fn as_u128(self) -> u128 {
        self.0
    }

    /// Creates a vector from two `u64` lanes (`lanes[0]` is least
    /// significant, like `_mm_set_epi64x(hi, lo)` reversed).
    #[inline]
    pub const fn from_u64x2(lanes: [u64; 2]) -> Self {
        Vec128((lanes[1] as u128) << 64 | lanes[0] as u128)
    }

    /// The two `u64` lanes, least significant first.
    #[inline]
    pub const fn to_u64x2(self) -> [u64; 2] {
        [self.0 as u64, (self.0 >> 64) as u64]
    }

    /// Creates a vector from four `u32` lanes, least significant first.
    pub const fn from_u32x4(lanes: [u32; 4]) -> Self {
        let mut v: u128 = 0;
        let mut i = 0;
        while i < 4 {
            v |= (lanes[i] as u128) << (32 * i);
            i += 1;
        }
        Vec128(v)
    }

    /// The four `u32` lanes, least significant first.
    pub const fn to_u32x4(self) -> [u32; 4] {
        [
            self.0 as u32,
            (self.0 >> 32) as u32,
            (self.0 >> 64) as u32,
            (self.0 >> 96) as u32,
        ]
    }

    /// Creates a vector from eight `u16` lanes, least significant first.
    pub const fn from_u16x8(lanes: [u16; 8]) -> Self {
        let mut v: u128 = 0;
        let mut i = 0;
        while i < 8 {
            v |= (lanes[i] as u128) << (16 * i);
            i += 1;
        }
        Vec128(v)
    }

    /// The eight `u16` lanes, least significant first.
    pub const fn to_u16x8(self) -> [u16; 8] {
        let mut out = [0u16; 8];
        let mut i = 0;
        while i < 8 {
            out[i] = (self.0 >> (16 * i)) as u16;
            i += 1;
        }
        out
    }

    /// Creates a vector from sixteen bytes, least significant first
    /// (i.e. `bytes[0]` is the lowest-addressed byte of an XMM register in
    /// memory).
    pub const fn from_bytes(bytes: [u8; 16]) -> Self {
        Vec128(u128::from_le_bytes(bytes))
    }

    /// The sixteen bytes, least significant first.
    pub const fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Creates a vector from two `f64` lanes, least significant first
    /// (the `VSQRTPD` operand layout).
    pub fn from_f64x2(lanes: [f64; 2]) -> Self {
        Self::from_u64x2([lanes[0].to_bits(), lanes[1].to_bits()])
    }

    /// The two `f64` lanes, least significant first.
    pub fn to_f64x2(self) -> [f64; 2] {
        let [a, b] = self.to_u64x2();
        [f64::from_bits(a), f64::from_bits(b)]
    }

    /// Creates a vector from four `i32` lanes, least significant first
    /// (the `VPSRAD`/`VPCMPGTD` operand layout).
    pub const fn from_i32x4(lanes: [i32; 4]) -> Self {
        Self::from_u32x4([
            lanes[0] as u32,
            lanes[1] as u32,
            lanes[2] as u32,
            lanes[3] as u32,
        ])
    }

    /// The four `i32` lanes, least significant first.
    pub const fn to_i32x4(self) -> [i32; 4] {
        let l = self.to_u32x4();
        [l[0] as i32, l[1] as i32, l[2] as i32, l[3] as i32]
    }

    /// Bit `i` (0 = least significant) as a bool.
    #[inline]
    pub const fn bit(self, i: u32) -> bool {
        assert!(i < 128);
        (self.0 >> i) & 1 == 1
    }

    /// Number of set bits.
    #[inline]
    pub const fn count_ones(self) -> u32 {
        self.0.count_ones()
    }
}

impl BitAnd for Vec128 {
    type Output = Vec128;
    #[inline]
    fn bitand(self, rhs: Vec128) -> Vec128 {
        Vec128(self.0 & rhs.0)
    }
}

impl BitOr for Vec128 {
    type Output = Vec128;
    #[inline]
    fn bitor(self, rhs: Vec128) -> Vec128 {
        Vec128(self.0 | rhs.0)
    }
}

impl BitXor for Vec128 {
    type Output = Vec128;
    #[inline]
    fn bitxor(self, rhs: Vec128) -> Vec128 {
        Vec128(self.0 ^ rhs.0)
    }
}

impl Not for Vec128 {
    type Output = Vec128;
    #[inline]
    fn not(self) -> Vec128 {
        Vec128(!self.0)
    }
}

impl fmt::Debug for Vec128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vec128(0x{:032x})", self.0)
    }
}

impl fmt::Display for Vec128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [lo, hi] = self.to_u64x2();
        write!(f, "{hi:016x}:{lo:016x}")
    }
}

impl From<u128> for Vec128 {
    fn from(v: u128) -> Self {
        Vec128(v)
    }
}

impl From<Vec128> for u128 {
    fn from(v: Vec128) -> u128 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_lane_order_is_little_endian() {
        let v = Vec128::from_u64x2([0x1111, 0x2222]);
        assert_eq!(v.as_u128(), 0x2222_u128 << 64 | 0x1111);
        assert_eq!(v.to_u64x2(), [0x1111, 0x2222]);
    }

    #[test]
    fn u32_lanes_roundtrip() {
        let lanes = [1u32, 2, 3, 4];
        assert_eq!(Vec128::from_u32x4(lanes).to_u32x4(), lanes);
    }

    #[test]
    fn u16_lanes_roundtrip() {
        let lanes = [1u16, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(Vec128::from_u16x8(lanes).to_u16x8(), lanes);
    }

    #[test]
    fn byte_order_matches_u128_le() {
        let mut bytes = [0u8; 16];
        bytes[0] = 0xAA;
        bytes[15] = 0xBB;
        let v = Vec128::from_bytes(bytes);
        assert_eq!(v.as_u128() & 0xFF, 0xAA);
        assert_eq!(v.as_u128() >> 120, 0xBB);
        assert_eq!(v.to_bytes(), bytes);
    }

    #[test]
    fn f64_lanes_roundtrip() {
        let v = Vec128::from_f64x2([1.5, -2.25]);
        assert_eq!(v.to_f64x2(), [1.5, -2.25]);
    }

    #[test]
    fn i32_lanes_preserve_sign() {
        let lanes = [-1, i32::MIN, 0, i32::MAX];
        assert_eq!(Vec128::from_i32x4(lanes).to_i32x4(), lanes);
    }

    #[test]
    fn bitwise_ops() {
        let a = Vec128::from_u64x2([0xF0F0, 0x0F0F]);
        let b = Vec128::from_u64x2([0xFF00, 0x00FF]);
        assert_eq!((a & b).to_u64x2(), [0xF000, 0x000F]);
        assert_eq!((a | b).to_u64x2(), [0xFFF0, 0x0FFF]);
        assert_eq!((a ^ b).to_u64x2(), [0x0FF0, 0x0FF0]);
        assert_eq!(!Vec128::ZERO, Vec128::ONES);
    }

    #[test]
    fn bit_access() {
        let v = Vec128::from_u128(1 << 127 | 1);
        assert!(v.bit(0));
        assert!(v.bit(127));
        assert!(!v.bit(64));
        assert_eq!(v.count_ones(), 2);
    }
}
