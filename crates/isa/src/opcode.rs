//! Opcodes, opcode classes, and the faultable-instruction set of Table 1.
//!
//! The paper's Table 1 lists the instructions Kogler et al. observed to
//! produce undervolting-induced silent data errors, ordered by how many
//! (core, frequency, voltage-offset) combinations produced a fault. `IMUL`
//! faults first in 91.2 % of cases and is the only *high-frequency*
//! faultable instruction; the rest are SIMD instructions plus `AESENC`,
//! which occur infrequently (on SPEC CPU2017 average, once every ~5×10⁹
//! instructions).

use core::fmt;

/// The instruction opcodes modelled by the SUIT reproduction.
///
/// The first group is the faultable set of Table 1 (wildcard families such
/// as `VOR*` are collapsed into a single variant). The second group covers
/// the non-faultable instruction classes needed to describe whole-program
/// instruction streams for the simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Opcode {
    // --- Faultable set (Table 1), most- to least-frequently faulting ---
    /// Integer multiply (`IMUL`/`MUL`). The only high-frequency faultable
    /// instruction; SUIT hardens it statically instead of trapping it.
    Imul,
    /// Vector bitwise OR family (`VOR*` / `VPOR`).
    Vor,
    /// AES round encryption (`AESENC`).
    Aesenc,
    /// Vector bitwise XOR family (`VXOR*` / `VPXOR`).
    Vxor,
    /// Vector AND-NOT family (`VANDN*`).
    Vandn,
    /// Vector bitwise AND family (`VAND*`).
    Vand,
    /// Packed double-precision square root (`VSQRTPD`).
    Vsqrtpd,
    /// Carry-less multiplication (`VPCLMULQDQ`).
    Vpclmulqdq,
    /// Packed arithmetic shift right (`VPSRAD`).
    Vpsrad,
    /// Packed compare family (`VPCMP*`).
    Vpcmp,
    /// Packed maximum family (`VPMAX*`).
    Vpmax,
    /// Packed 64-bit add (`VPADDQ`).
    Vpaddq,

    // --- Non-faultable classes used to model whole programs ---
    /// Scalar integer ALU operation (add, sub, logic, shifts, lea, ...).
    Alu,
    /// Scalar integer division (`DIV`/`IDIV`).
    Div,
    /// Scalar floating-point operation.
    Fp,
    /// Non-faultable SIMD operation (the bulk of SSE/AVX code).
    SimdOther,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch/call/return.
    Branch,
    /// Anything else (no-ops, fences, system instructions, ...).
    Other,
}

impl Opcode {
    /// All opcode variants, faultable first in Table 1 order.
    pub const ALL: [Opcode; 20] = [
        Opcode::Imul,
        Opcode::Vor,
        Opcode::Aesenc,
        Opcode::Vxor,
        Opcode::Vandn,
        Opcode::Vand,
        Opcode::Vsqrtpd,
        Opcode::Vpclmulqdq,
        Opcode::Vpsrad,
        Opcode::Vpcmp,
        Opcode::Vpmax,
        Opcode::Vpaddq,
        Opcode::Alu,
        Opcode::Div,
        Opcode::Fp,
        Opcode::SimdOther,
        Opcode::Load,
        Opcode::Store,
        Opcode::Branch,
        Opcode::Other,
    ];

    /// Number of modelled opcodes.
    pub const COUNT: usize = Self::ALL.len();

    /// A dense index in `0..Opcode::COUNT`, usable for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The broad class this opcode belongs to.
    pub const fn class(self) -> OpcodeClass {
        match self {
            Opcode::Imul | Opcode::Alu | Opcode::Div => OpcodeClass::ScalarInt,
            Opcode::Fp => OpcodeClass::ScalarFp,
            Opcode::Aesenc => OpcodeClass::Crypto,
            Opcode::Vor
            | Opcode::Vxor
            | Opcode::Vandn
            | Opcode::Vand
            | Opcode::Vsqrtpd
            | Opcode::Vpclmulqdq
            | Opcode::Vpsrad
            | Opcode::Vpcmp
            | Opcode::Vpmax
            | Opcode::Vpaddq
            | Opcode::SimdOther => OpcodeClass::Simd,
            Opcode::Load | Opcode::Store => OpcodeClass::Memory,
            Opcode::Branch => OpcodeClass::Control,
            Opcode::Other => OpcodeClass::Other,
        }
    }

    /// Whether this opcode is in the faultable set of Table 1.
    #[inline]
    pub const fn is_faultable(self) -> bool {
        (self as usize) < TABLE1.len()
    }

    /// Whether the opcode is a SIMD instruction that disappears from a
    /// binary compiled without SSE/AVX support (§5.8). Everything in
    /// Table 1 except `IMUL` and `AESENC` is SIMD.
    #[inline]
    pub const fn is_simd(self) -> bool {
        matches!(self.class(), OpcodeClass::Simd)
    }

    /// The mnemonic family name as printed in the paper's Table 1.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Imul => "IMUL",
            Opcode::Vor => "VOR*",
            Opcode::Aesenc => "AESENC",
            Opcode::Vxor => "VXOR*",
            Opcode::Vandn => "VANDN*",
            Opcode::Vand => "VAND*",
            Opcode::Vsqrtpd => "VSQRTPD",
            Opcode::Vpclmulqdq => "VPCLMULQDQ",
            Opcode::Vpsrad => "VPSRAD",
            Opcode::Vpcmp => "VPCMP*",
            Opcode::Vpmax => "VPMAX*",
            Opcode::Vpaddq => "VPADDQ",
            Opcode::Alu => "ALU",
            Opcode::Div => "DIV",
            Opcode::Fp => "FP",
            Opcode::SimdOther => "SIMD",
            Opcode::Load => "LOAD",
            Opcode::Store => "STORE",
            Opcode::Branch => "BRANCH",
            Opcode::Other => "OTHER",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Broad instruction classes, used by the pipeline model to pick functional
/// units and by the fault model to group voltage behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpcodeClass {
    /// Scalar integer operations.
    ScalarInt,
    /// Scalar floating point operations.
    ScalarFp,
    /// Vector (SSE/AVX) operations.
    Simd,
    /// AES-NI style crypto operations.
    Crypto,
    /// Loads and stores.
    Memory,
    /// Branches and calls.
    Control,
    /// Everything else.
    Other,
}

/// One row of the paper's Table 1: a faultable opcode and the number of
/// (core, frequency, voltage-offset) combinations in which Kogler et al.
/// observed it to fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// The faultable opcode family.
    pub opcode: Opcode,
    /// Number of observed faults for this family.
    pub faults: u32,
}

/// The paper's Table 1, in order: undervolting-induced instruction faults
/// observed by Kogler et al., most frequently faulting first.
pub const TABLE1: [Table1Row; 12] = [
    Table1Row {
        opcode: Opcode::Imul,
        faults: 79,
    },
    Table1Row {
        opcode: Opcode::Vor,
        faults: 47,
    },
    Table1Row {
        opcode: Opcode::Aesenc,
        faults: 40,
    },
    Table1Row {
        opcode: Opcode::Vxor,
        faults: 40,
    },
    Table1Row {
        opcode: Opcode::Vandn,
        faults: 30,
    },
    Table1Row {
        opcode: Opcode::Vand,
        faults: 28,
    },
    Table1Row {
        opcode: Opcode::Vsqrtpd,
        faults: 24,
    },
    Table1Row {
        opcode: Opcode::Vpclmulqdq,
        faults: 16,
    },
    Table1Row {
        opcode: Opcode::Vpsrad,
        faults: 9,
    },
    Table1Row {
        opcode: Opcode::Vpcmp,
        faults: 5,
    },
    Table1Row {
        opcode: Opcode::Vpmax,
        faults: 3,
    },
    Table1Row {
        opcode: Opcode::Vpaddq,
        faults: 1,
    },
];

/// A set of opcodes, used to describe which instructions the OS disables on
/// the efficient DVFS curve (the *disable opcode MSR* of §3.3).
///
/// The set is a bitmask over [`Opcode`] and is cheap to copy. The two
/// important constructors are:
///
/// * [`FaultableSet::table1`] — everything in Table 1 (the full faultable
///   set a CPU without IMUL hardening would need to disable), and
/// * [`FaultableSet::suit`] — Table 1 *minus* `IMUL`, because a SUIT CPU
///   statically hardens `IMUL` with one extra pipeline stage (§4.2), making
///   it safe on the efficient curve.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultableSet {
    bits: u32,
}

impl FaultableSet {
    /// The empty set: no instructions are disabled.
    pub const EMPTY: FaultableSet = FaultableSet { bits: 0 };

    /// Creates an empty set.
    #[inline]
    pub const fn new() -> Self {
        Self::EMPTY
    }

    /// The full Table 1 faultable set, including `IMUL`.
    pub const fn table1() -> Self {
        let mut s = Self::EMPTY;
        let mut i = 0;
        while i < TABLE1.len() {
            s = s.with(TABLE1[i].opcode);
            i += 1;
        }
        s
    }

    /// The set a SUIT CPU disables on the efficient curve: Table 1 without
    /// `IMUL` (which is hardened in hardware instead, §4.2).
    pub const fn suit() -> Self {
        Self::table1().without(Opcode::Imul)
    }

    /// Returns a copy of the set with `op` inserted.
    #[inline]
    pub const fn with(self, op: Opcode) -> Self {
        Self {
            bits: self.bits | (1 << op.index()),
        }
    }

    /// Returns a copy of the set with `op` removed.
    #[inline]
    pub const fn without(self, op: Opcode) -> Self {
        Self {
            bits: self.bits & !(1 << op.index()),
        }
    }

    /// Inserts `op` into the set. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, op: Opcode) -> bool {
        let before = self.bits;
        self.bits |= 1 << op.index();
        self.bits != before
    }

    /// Removes `op` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, op: Opcode) -> bool {
        let before = self.bits;
        self.bits &= !(1 << op.index());
        self.bits != before
    }

    /// Whether `op` is in the set.
    #[inline]
    pub const fn contains(self, op: Opcode) -> bool {
        self.bits & (1 << op.index()) != 0
    }

    /// Number of opcodes in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Union of two sets.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        Self {
            bits: self.bits | other.bits,
        }
    }

    /// Intersection of two sets.
    #[inline]
    pub const fn intersection(self, other: Self) -> Self {
        Self {
            bits: self.bits & other.bits,
        }
    }

    /// Iterates over the opcodes in the set, in Table 1 / declaration order.
    pub fn iter(self) -> impl Iterator<Item = Opcode> {
        Opcode::ALL.into_iter().filter(move |op| self.contains(*op))
    }
}

impl fmt::Debug for FaultableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Opcode> for FaultableSet {
    fn from_iter<I: IntoIterator<Item = Opcode>>(iter: I) -> Self {
        let mut s = Self::EMPTY;
        for op in iter {
            s.insert(op);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        assert_eq!(TABLE1.len(), 12);
        assert_eq!(TABLE1[0].opcode, Opcode::Imul);
        assert_eq!(TABLE1[0].faults, 79);
        assert_eq!(TABLE1[11].opcode, Opcode::Vpaddq);
        assert_eq!(TABLE1[11].faults, 1);
        // Table 1 is sorted by descending fault count.
        for w in TABLE1.windows(2) {
            assert!(w[0].faults >= w[1].faults);
        }
    }

    #[test]
    fn faultable_flag_agrees_with_table1() {
        for row in TABLE1 {
            assert!(row.opcode.is_faultable(), "{:?}", row.opcode);
        }
        for op in [Opcode::Alu, Opcode::Load, Opcode::Branch, Opcode::Fp] {
            assert!(!op.is_faultable(), "{op:?}");
        }
    }

    #[test]
    fn suit_set_excludes_imul_only() {
        let suit = FaultableSet::suit();
        let full = FaultableSet::table1();
        assert_eq!(full.len(), 12);
        assert_eq!(suit.len(), 11);
        assert!(full.contains(Opcode::Imul));
        assert!(!suit.contains(Opcode::Imul));
        assert_eq!(suit.union(FaultableSet::EMPTY.with(Opcode::Imul)), full);
    }

    #[test]
    fn simd_classification_matches_section_5_8() {
        // "All instructions in Table 1 except IMUL and AESENC are SIMD."
        for row in TABLE1 {
            let expected = !matches!(row.opcode, Opcode::Imul | Opcode::Aesenc);
            assert_eq!(row.opcode.is_simd(), expected, "{:?}", row.opcode);
        }
    }

    #[test]
    fn set_insert_remove_roundtrip() {
        let mut s = FaultableSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Opcode::Aesenc));
        assert!(!s.insert(Opcode::Aesenc));
        assert!(s.contains(Opcode::Aesenc));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Opcode::Aesenc));
        assert!(!s.remove(Opcode::Aesenc));
        assert!(s.is_empty());
    }

    #[test]
    fn set_iter_order_is_stable() {
        let s = FaultableSet::suit();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v.first(), Some(&Opcode::Vor));
        assert_eq!(v.last(), Some(&Opcode::Vpaddq));
        assert_eq!(v.len(), 11);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Opcode::COUNT];
        for op in Opcode::ALL {
            assert!(op.index() < Opcode::COUNT);
            assert!(!seen[op.index()]);
            seen[op.index()] = true;
        }
    }

    #[test]
    fn display_uses_paper_mnemonics() {
        assert_eq!(Opcode::Imul.to_string(), "IMUL");
        assert_eq!(Opcode::Vpclmulqdq.to_string(), "VPCLMULQDQ");
        assert_eq!(Opcode::Vor.to_string(), "VOR*");
    }
}
