//! # suit-isa
//!
//! Shared x86-64 instruction model for the SUIT reproduction.
//!
//! This crate defines the vocabulary used by every other crate in the
//! workspace:
//!
//! * [`Opcode`] — the instruction opcodes SUIT cares about, including the
//!   full *faultable set* of the paper's Table 1 (instructions observed to
//!   produce silent data errors when undervolted) plus the common
//!   non-faultable instruction classes needed to model whole programs.
//! * [`FaultableSet`] — the set of opcodes the operating system disables
//!   while the CPU runs on the efficient DVFS curve (§3.3 of the paper).
//! * [`Vec128`] — a 128-bit SIMD value with typed lane views, used by the
//!   emulation library and the fault model.
//! * [`SimTime`] / [`SimDuration`] — picosecond-resolution simulation time,
//!   shared by the hardware models and both simulators.
//! * [`Inst`] — a decoded instruction descriptor consumed by the
//!   out-of-order core model and the trace-driven simulator.
//! * [`mod@decode`] — an x86-64 byte decoder for the faultable-set encodings
//!   (legacy SSE and VEX), what a real `#DO` handler runs at the faulting
//!   RIP.
//! * [`mod@encode`] — the inverse: concrete faultable encodings emitted from
//!   an independent opcode table, the differential oracle the `suit-check`
//!   fuzz targets pit against the decoder.
//!
//! The crate is dependency-free and forbids `unsafe`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod inst;
pub mod opcode;
pub mod time;
pub mod vec;

pub use decode::{decode, AesVariant, DecodeError, Decoded};
pub use encode::{reencode, EncodeSpec, Rm};
pub use inst::{Inst, InstKind};
pub use opcode::{FaultableSet, Opcode, OpcodeClass, TABLE1};
pub use time::{SimDuration, SimTime};
pub use vec::Vec128;
