//! x86-64 instruction decoding for the faultable set.
//!
//! A real `#DO` handler receives only a faulting RIP; to emulate the
//! instruction (§3.4) the OS must decode its bytes: identify the opcode
//! family, locate the register operands, and find any immediate. This
//! module implements that decoder for every instruction family in
//! Table 1 — legacy-SSE encodings (`66 0F …`) and their VEX forms
//! (`C4`/`C5`) — plus the `IMUL`/`MUL` encodings, with full ModRM/SIB/
//! displacement length calculation so the handler can compute the
//! resume RIP.
//!
//! Unknown or non-faultable instructions decode to [`DecodeError`]; the
//! handler treats that as a kernel bug (hardware only traps disabled
//! opcodes).

use crate::opcode::Opcode;

/// Which member of the AES-NI round family an `Aesenc`-class decode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesVariant {
    /// `AESENC` — middle encryption round.
    Enc,
    /// `AESENCLAST` — final encryption round (no MixColumns).
    EncLast,
    /// `AESDEC` — middle decryption round.
    Dec,
    /// `AESDECLAST` — final decryption round.
    DecLast,
}

/// A successfully decoded faultable instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The opcode family (maps onto the Table 1 rows).
    pub opcode: Opcode,
    /// The concrete AES round operation when `opcode` is
    /// [`Opcode::Aesenc`] (the Table 1 family covers all four) — the
    /// emulation handler must dispatch on this, since the four rounds
    /// compute different functions.
    pub aes: Option<AesVariant>,
    /// Total instruction length in bytes (for computing the resume RIP).
    pub length: usize,
    /// Destination register number (ModRM.reg with REX/VEX extension).
    pub reg: u8,
    /// Source register number when the operand is a register
    /// (ModRM.rm + extension); `None` for memory operands.
    pub rm_reg: Option<u8>,
    /// The second source for VEX three-operand forms (vvvv), if any.
    pub vvvv: Option<u8>,
    /// Trailing immediate byte, when the encoding has one.
    pub imm8: Option<u8>,
    /// Whether the instruction used a VEX prefix (AVX form).
    pub vex: bool,
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended mid-instruction.
    Truncated,
    /// The instruction is valid x86 but not in the faultable set.
    NotFaultable,
    /// The bytes do not form a recognised instruction.
    Unknown,
    /// The encoding exceeds the architectural 15-byte instruction limit
    /// (redundant-prefix padding); hardware raises `#GP` for these, so
    /// the decoder must never report them as executable.
    TooLong,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "instruction bytes truncated"),
            DecodeError::NotFaultable => write!(f, "instruction is not in the faultable set"),
            DecodeError::Unknown => write!(f, "unrecognised instruction bytes"),
            DecodeError::TooLong => {
                write!(f, "encoding exceeds the 15-byte instruction limit")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn skip(&mut self, n: usize) -> Result<(), DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        self.pos += n;
        Ok(())
    }
}

/// ModRM operand information.
struct ModRm {
    reg: u8,
    rm_reg: Option<u8>,
}

/// Parses ModRM (+ SIB + displacement), returning operand registers and
/// advancing past the addressing bytes. `rex_r`/`rex_b` extend reg/rm.
fn parse_modrm(c: &mut Cursor<'_>, rex_r: bool, rex_b: bool) -> Result<ModRm, DecodeError> {
    let modrm = c.next()?;
    let modb = modrm >> 6;
    let reg = ((modrm >> 3) & 7) | if rex_r { 8 } else { 0 };
    let rm = modrm & 7;

    if modb == 3 {
        return Ok(ModRm {
            reg,
            rm_reg: Some(rm | if rex_b { 8 } else { 0 }),
        });
    }

    // Memory operand: consume SIB/displacement, report no rm register.
    if rm == 4 {
        let sib = c.next()?;
        // SIB with base = 5 and mod = 0 has a 4-byte displacement.
        if modb == 0 && (sib & 7) == 5 {
            c.skip(4)?;
        }
    } else if modb == 0 && rm == 5 {
        // RIP-relative: 4-byte displacement.
        c.skip(4)?;
    }
    match modb {
        1 => c.skip(1)?,
        2 => c.skip(4)?,
        _ => {}
    }
    Ok(ModRm { reg, rm_reg: None })
}

/// Opcode-map lookup shared by legacy (`0F`, `0F 38`, `0F 3A`) and VEX
/// (map 1/2/3) encodings. Requires the operand-size prefix semantics
/// (66 / VEX.pp = 01) that the faultable instructions use.
fn map_opcode(map: u8, op: u8) -> Option<(Opcode, bool /* has imm8 */, Option<AesVariant>)> {
    match (map, op) {
        // Map 1 (0F xx)
        (1, 0xAF) => Some((Opcode::Imul, false, None)), // IMUL r, r/m
        (1, 0xEB) => Some((Opcode::Vor, false, None)),  // POR / VPOR
        (1, 0xEF) => Some((Opcode::Vxor, false, None)), // PXOR / VPXOR
        (1, 0xDB) => Some((Opcode::Vand, false, None)), // PAND / VPAND
        (1, 0xDF) => Some((Opcode::Vandn, false, None)), // PANDN / VPANDN
        (1, 0x51) => Some((Opcode::Vsqrtpd, false, None)), // SQRTPD / VSQRTPD
        (1, 0xE2) => Some((Opcode::Vpsrad, false, None)), // PSRAD xmm, xmm/m
        (1, 0x76) => Some((Opcode::Vpcmp, false, None)), // PCMPEQD
        (1, 0x66) => Some((Opcode::Vpcmp, false, None)), // PCMPGTD
        (1, 0xDE) => Some((Opcode::Vpmax, false, None)), // PMAXUB
        (1, 0xD4) => Some((Opcode::Vpaddq, false, None)), // PADDQ / VPADDQ
        // Map 2 (0F 38 xx): the AES-NI round family.
        (2, 0xDC) => Some((Opcode::Aesenc, false, Some(AesVariant::Enc))),
        (2, 0xDD) => Some((Opcode::Aesenc, false, Some(AesVariant::EncLast))),
        (2, 0xDE) => Some((Opcode::Aesenc, false, Some(AesVariant::Dec))),
        (2, 0xDF) => Some((Opcode::Aesenc, false, Some(AesVariant::DecLast))),
        (2, 0x3D) => Some((Opcode::Vpmax, false, None)), // PMAXSD
        // Map 3 (0F 3A xx)
        (3, 0x44) => Some((Opcode::Vpclmulqdq, true, None)),
        _ => None,
    }
}

/// Decodes one instruction starting at `bytes[0]`.
///
/// ```
/// use suit_isa::decode::decode;
/// use suit_isa::Opcode;
///
/// // 66 0F 38 DC C1 = AESENC xmm0, xmm1
/// let d = decode(&[0x66, 0x0F, 0x38, 0xDC, 0xC1]).unwrap();
/// assert_eq!(d.opcode, Opcode::Aesenc);
/// assert_eq!(d.length, 5);
/// ```
///
/// # Errors
///
/// [`DecodeError::NotFaultable`] for recognisable instructions outside
/// Table 1, [`DecodeError::Unknown`] for unrecognised bytes,
/// [`DecodeError::Truncated`] when `bytes` is too short, and
/// [`DecodeError::TooLong`] when prefix padding pushes the encoding past
/// the architectural 15-byte limit.
pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    // x86 caps instructions at 15 bytes; anything longer (reachable here
    // only through redundant prefix padding) takes #GP on hardware and
    // must not decode. Found by the suit-check decoder fuzz target: the
    // prefix loop happily consumed e.g. twelve 0x66 bytes and reported a
    // 17-byte "instruction" (regression seeds in tests/corpus/).
    const MAX_INST_LEN: usize = 15;
    let d = decode_inner(bytes)?;
    if d.length > MAX_INST_LEN {
        return Err(DecodeError::TooLong);
    }
    Ok(d)
}

fn decode_inner(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    let mut b = c.next()?;

    // --- VEX prefixes -----------------------------------------------------
    if b == 0xC5 || b == 0xC4 {
        let (map, rex_r, rex_b, vvvv, pp) = if b == 0xC5 {
            let p1 = c.next()?;
            // 2-byte VEX: map is always 1; R is bit 7 inverted.
            (1u8, p1 & 0x80 == 0, false, (!p1 >> 3) & 0xF, p1 & 0x3)
        } else {
            let p1 = c.next()?;
            let p2 = c.next()?;
            (
                p1 & 0x1F,
                p1 & 0x80 == 0,
                p1 & 0x20 == 0,
                (!p2 >> 3) & 0xF,
                p2 & 0x3,
            )
        };
        let op = c.next()?;
        // Every faultable VEX encoding uses the 66 operand-size class
        // (VEX.pp = 01); other pp values select different instructions.
        if pp != 0b01 {
            return Err(DecodeError::Unknown);
        }
        let (opcode, has_imm, aes) = map_opcode(map, op).ok_or(DecodeError::Unknown)?;
        let m = parse_modrm(&mut c, rex_r, rex_b)?;
        let imm8 = if has_imm { Some(c.next()?) } else { None };
        return Ok(Decoded {
            opcode,
            aes,
            length: c.pos,
            reg: m.reg,
            rm_reg: m.rm_reg,
            vvvv: Some(vvvv),
            imm8,
            vex: true,
        });
    }

    // --- Legacy prefixes ---------------------------------------------------
    let mut has_66 = false;
    loop {
        match b {
            0x66 => {
                has_66 = true;
                b = c.next()?;
            }
            0xF2 | 0xF3 | 0x2E | 0x3E | 0x26 | 0x36 | 0x64 | 0x65 => b = c.next()?,
            _ => break,
        }
    }
    let (mut rex_r, mut rex_b) = (false, false);
    if (0x40..=0x4F).contains(&b) {
        rex_r = b & 0x04 != 0;
        rex_b = b & 0x01 != 0;
        b = c.next()?;
    }

    // One-byte-opcode IMUL forms.
    match b {
        0x69 | 0x6B => {
            // IMUL r, r/m, imm — immediate is 1 or 4 bytes.
            let m = parse_modrm(&mut c, rex_r, rex_b)?;
            let imm8 = if b == 0x6B {
                Some(c.next()?)
            } else {
                c.skip(4)?;
                None
            };
            return Ok(Decoded {
                opcode: Opcode::Imul,
                aes: None,
                length: c.pos,
                reg: m.reg,
                rm_reg: m.rm_reg,
                vvvv: None,
                imm8,
                vex: false,
            });
        }
        0xF7 => {
            // Group 3: /4 = MUL, /5 = IMUL (one-operand); other /r values
            // (NOT, NEG, DIV, …) are not faultable.
            let m = parse_modrm(&mut c, rex_r, rex_b)?;
            let op_ext = m.reg & 7;
            if op_ext == 4 || op_ext == 5 {
                return Ok(Decoded {
                    opcode: Opcode::Imul,
                    aes: None,
                    length: c.pos,
                    reg: 0, // implicit RDX:RAX
                    rm_reg: m.rm_reg,
                    vvvv: None,
                    imm8: None,
                    vex: false,
                });
            }
            return Err(DecodeError::NotFaultable);
        }
        _ => {}
    }

    if b != 0x0F {
        return Err(DecodeError::Unknown);
    }
    let b2 = c.next()?;
    let (map, op) = match b2 {
        0x38 => (2u8, c.next()?),
        0x3A => (3u8, c.next()?),
        other => (1u8, other),
    };

    // Legacy SSE forms of the SIMD faultables require the 66 prefix
    // (except IMUL 0F AF, which must *not* have one for register forms —
    // we accept either, as real decoders do).
    let (opcode, has_imm, aes) = map_opcode(map, op).ok_or(DecodeError::Unknown)?;
    if opcode != Opcode::Imul && !has_66 {
        // MMX form (no 66): architecturally distinct registers; the
        // faultable set is about the XMM datapath.
        return Err(DecodeError::NotFaultable);
    }
    let m = parse_modrm(&mut c, rex_r, rex_b)?;
    let imm8 = if has_imm { Some(c.next()?) } else { None };
    Ok(Decoded {
        opcode,
        aes,
        length: c.pos,
        reg: m.reg,
        rm_reg: m.rm_reg,
        vvvv: None,
        imm8,
        vex: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_aesenc() {
        // 66 0F 38 DC C1 = AESENC xmm0, xmm1
        let d = decode(&[0x66, 0x0F, 0x38, 0xDC, 0xC1]).unwrap();
        assert_eq!(d.opcode, Opcode::Aesenc);
        assert_eq!(d.aes, Some(AesVariant::Enc));
        assert_eq!(d.length, 5);
        assert_eq!(d.reg, 0);
        assert_eq!(d.rm_reg, Some(1));
        assert!(!d.vex);
    }

    #[test]
    fn distinguishes_the_four_aes_rounds() {
        // The family shares one Table 1 row but the four opcodes compute
        // different functions — the decoder must keep them apart.
        let cases = [
            (0xDCu8, AesVariant::Enc),
            (0xDD, AesVariant::EncLast),
            (0xDE, AesVariant::Dec),
            (0xDF, AesVariant::DecLast),
        ];
        for (byte, variant) in cases {
            let d = decode(&[0x66, 0x0F, 0x38, byte, 0xC1]).unwrap();
            assert_eq!(d.opcode, Opcode::Aesenc);
            assert_eq!(d.aes, Some(variant), "{byte:#x}");
        }
        // Non-AES decodes carry no variant.
        assert_eq!(decode(&[0x0F, 0xAF, 0xC1]).unwrap().aes, None);
    }

    #[test]
    fn decodes_vex_vpor() {
        // C5 F5 EB C2 = VPOR ymm0, ymm1, ymm2 (2-byte VEX, vvvv = 1).
        let d = decode(&[0xC5, 0xF5, 0xEB, 0xC2]).unwrap();
        assert_eq!(d.opcode, Opcode::Vor);
        assert_eq!(d.length, 4);
        assert_eq!(d.reg, 0);
        assert_eq!(d.rm_reg, Some(2));
        assert_eq!(d.vvvv, Some(1));
        assert!(d.vex);
    }

    #[test]
    fn decodes_vpclmulqdq_with_imm() {
        // 66 0F 3A 44 C1 10 = PCLMULQDQ xmm0, xmm1, 0x10
        let d = decode(&[0x66, 0x0F, 0x3A, 0x44, 0xC1, 0x10]).unwrap();
        assert_eq!(d.opcode, Opcode::Vpclmulqdq);
        assert_eq!(d.imm8, Some(0x10));
        assert_eq!(d.length, 6);
        // 3-byte VEX form: C4 E3 71 44 C2 01 = VPCLMULQDQ xmm0, xmm1, xmm2, 1
        let v = decode(&[0xC4, 0xE3, 0x71, 0x44, 0xC2, 0x01]).unwrap();
        assert_eq!(v.opcode, Opcode::Vpclmulqdq);
        assert_eq!(v.imm8, Some(0x01));
        assert_eq!(v.vvvv, Some(1));
        assert_eq!(v.rm_reg, Some(2));
    }

    #[test]
    fn decodes_imul_forms() {
        // 0F AF C3 = IMUL eax, ebx
        let d = decode(&[0x0F, 0xAF, 0xC3]).unwrap();
        assert_eq!(d.opcode, Opcode::Imul);
        assert_eq!(d.reg, 0);
        assert_eq!(d.rm_reg, Some(3));
        // 48 0F AF C3 = IMUL rax, rbx (REX.W)
        let d = decode(&[0x48, 0x0F, 0xAF, 0xC3]).unwrap();
        assert_eq!(d.length, 4);
        // 6B C3 07 = IMUL eax, ebx, 7
        let d = decode(&[0x6B, 0xC3, 0x07]).unwrap();
        assert_eq!(d.opcode, Opcode::Imul);
        assert_eq!(d.imm8, Some(7));
        // 69 C3 78 56 34 12 = IMUL eax, ebx, 0x12345678
        let d = decode(&[0x69, 0xC3, 0x78, 0x56, 0x34, 0x12]).unwrap();
        assert_eq!(d.length, 6);
        // F7 EB = IMUL ebx (one-operand, /5)
        let d = decode(&[0xF7, 0xEB]).unwrap();
        assert_eq!(d.opcode, Opcode::Imul);
        // F7 E3 = MUL ebx (/4) — same family.
        let d = decode(&[0xF7, 0xE3]).unwrap();
        assert_eq!(d.opcode, Opcode::Imul);
        // F7 D8 = NEG eax (/3): not faultable.
        assert_eq!(decode(&[0xF7, 0xD8]), Err(DecodeError::NotFaultable));
    }

    #[test]
    fn rex_extends_registers() {
        // 66 45 0F EF C9 = PXOR xmm9, xmm9 (REX.R + REX.B)
        let d = decode(&[0x66, 0x45, 0x0F, 0xEF, 0xC9]).unwrap();
        assert_eq!(d.opcode, Opcode::Vxor);
        assert_eq!(d.reg, 9);
        assert_eq!(d.rm_reg, Some(9));
    }

    #[test]
    fn memory_operands_consume_addressing_bytes() {
        // 66 0F 38 DC 04 24 = AESENC xmm0, [rsp] (SIB, no disp)
        let d = decode(&[0x66, 0x0F, 0x38, 0xDC, 0x04, 0x24]).unwrap();
        assert_eq!(d.length, 6);
        assert_eq!(d.rm_reg, None);
        // 66 0F EF 45 10 = PXOR xmm0, [rbp+0x10] (disp8)
        let d = decode(&[0x66, 0x0F, 0xEF, 0x45, 0x10]).unwrap();
        assert_eq!(d.length, 5);
        // 66 0F EF 80 00 01 00 00 = PXOR xmm0, [rax+0x100] (disp32)
        let d = decode(&[0x66, 0x0F, 0xEF, 0x80, 0x00, 0x01, 0x00, 0x00]).unwrap();
        assert_eq!(d.length, 8);
        // RIP-relative: 66 0F EF 05 xx xx xx xx
        let d = decode(&[0x66, 0x0F, 0xEF, 0x05, 1, 2, 3, 4]).unwrap();
        assert_eq!(d.length, 8);
    }

    #[test]
    fn vex_pp_must_select_the_66_class() {
        // C5 F4 EB C2 would be VEX.pp=00 (no 66): a different instruction
        // family, not the faultable VPOR.
        assert_eq!(decode(&[0xC5, 0xF4, 0xEB, 0xC2]), Err(DecodeError::Unknown));
        // pp=01 (C5 F5 ...) decodes.
        assert!(decode(&[0xC5, 0xF5, 0xEB, 0xC2]).is_ok());
    }

    #[test]
    fn rejects_unknown_and_truncated() {
        assert_eq!(decode(&[0x90]), Err(DecodeError::Unknown)); // NOP
        assert_eq!(decode(&[0x0F, 0x05]), Err(DecodeError::Unknown)); // SYSCALL
        assert_eq!(decode(&[0x66, 0x0F, 0x38]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
        // MMX POR (no 66 prefix) is not the XMM faultable.
        assert_eq!(decode(&[0x0F, 0xEB, 0xC1]), Err(DecodeError::NotFaultable));
    }

    #[test]
    fn prefix_padding_past_15_bytes_is_rejected() {
        // 10 redundant 0x66 prefixes + PXOR: 14 bytes, still legal.
        let mut bytes = vec![0x66u8; 10];
        bytes.extend_from_slice(&[0x66, 0x0F, 0xEF, 0xC1]);
        assert_eq!(decode(&bytes).unwrap().length, 14);
        // 15 bytes sits exactly on the architectural limit; one more
        // prefix crosses it: #GP, not a 16-byte decode.
        bytes.insert(0, 0x2E);
        assert_eq!(decode(&bytes).unwrap().length, 15);
        bytes.insert(0, 0x3E);
        assert_eq!(decode(&bytes), Err(DecodeError::TooLong));
        // Same guard on the longest natural form (disp32 + imm8 + VEX).
        let mut long = vec![0xF3u8; 9];
        long.extend_from_slice(&[0x66, 0x0F, 0x3A, 0x44, 0x80, 1, 2, 3, 4, 0x10]);
        assert_eq!(decode(&long), Err(DecodeError::TooLong));
    }

    #[test]
    fn every_table1_family_has_a_decodable_encoding() {
        let cases: &[(&[u8], Opcode)] = &[
            (&[0x0F, 0xAF, 0xC1], Opcode::Imul),
            (&[0x66, 0x0F, 0xEB, 0xC1], Opcode::Vor),
            (&[0x66, 0x0F, 0x38, 0xDC, 0xC1], Opcode::Aesenc),
            (&[0x66, 0x0F, 0xEF, 0xC1], Opcode::Vxor),
            (&[0x66, 0x0F, 0xDF, 0xC1], Opcode::Vandn),
            (&[0x66, 0x0F, 0xDB, 0xC1], Opcode::Vand),
            (&[0x66, 0x0F, 0x51, 0xC1], Opcode::Vsqrtpd),
            (&[0x66, 0x0F, 0x3A, 0x44, 0xC1, 0x00], Opcode::Vpclmulqdq),
            (&[0x66, 0x0F, 0xE2, 0xC1], Opcode::Vpsrad),
            (&[0x66, 0x0F, 0x76, 0xC1], Opcode::Vpcmp),
            (&[0x66, 0x0F, 0x38, 0x3D, 0xC1], Opcode::Vpmax),
            (&[0x66, 0x0F, 0xD4, 0xC1], Opcode::Vpaddq),
        ];
        for (bytes, expect) in cases {
            let d = decode(bytes).unwrap_or_else(|e| panic!("{expect}: {e}"));
            assert_eq!(d.opcode, *expect);
        }
    }
}
