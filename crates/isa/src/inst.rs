//! Decoded instruction descriptors for the pipeline simulator.
//!
//! The out-of-order core model (`suit-ooo`) and the synthetic workload
//! generators describe programs as streams of [`Inst`] values: an opcode
//! plus architectural register operands. The register file is abstract
//! (64 names, enough for x86-64's 16 GPRs + 16 XMM + renaming headroom in
//! the generators); the simulators only care about *dependencies*, not
//! values.

use crate::opcode::{Opcode, OpcodeClass};

/// How an instruction interacts with the memory system and the branch unit.
///
/// Derived from the opcode; split out so the pipeline model can route
/// instructions to functional units without matching on every opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Pure register-to-register computation.
    Compute,
    /// Memory load (address from `src1`).
    Load,
    /// Memory store (address from `src1`, data from `src2`).
    Store,
    /// Control transfer.
    Branch,
}

/// A decoded instruction: opcode plus abstract register operands.
///
/// `dst` is the written register (if any); `src1`/`src2` the read registers
/// (if any). Register names are indices into an abstract 64-entry
/// architectural register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The instruction opcode.
    pub opcode: Opcode,
    /// Destination register, if the instruction writes one.
    pub dst: Option<u8>,
    /// First source register.
    pub src1: Option<u8>,
    /// Second source register.
    pub src2: Option<u8>,
}

/// Number of abstract architectural registers.
pub const ARCH_REGS: u8 = 64;

impl Inst {
    /// Creates a compute-style instruction `dst = op(src1, src2)`.
    ///
    /// # Panics
    ///
    /// Panics if any register name is out of range (`>= ARCH_REGS`).
    pub fn new(opcode: Opcode, dst: u8, src1: u8, src2: u8) -> Self {
        assert!(
            dst < ARCH_REGS && src1 < ARCH_REGS && src2 < ARCH_REGS,
            "register name out of range"
        );
        Inst {
            opcode,
            dst: Some(dst),
            src1: Some(src1),
            src2: Some(src2),
        }
    }

    /// Creates a unary instruction `dst = op(src1)`.
    pub fn unary(opcode: Opcode, dst: u8, src1: u8) -> Self {
        assert!(
            dst < ARCH_REGS && src1 < ARCH_REGS,
            "register name out of range"
        );
        Inst {
            opcode,
            dst: Some(dst),
            src1: Some(src1),
            src2: None,
        }
    }

    /// Creates a load `dst = [src1]`.
    pub fn load(dst: u8, addr: u8) -> Self {
        assert!(
            dst < ARCH_REGS && addr < ARCH_REGS,
            "register name out of range"
        );
        Inst {
            opcode: Opcode::Load,
            dst: Some(dst),
            src1: Some(addr),
            src2: None,
        }
    }

    /// Creates a store `[addr] = data`.
    pub fn store(addr: u8, data: u8) -> Self {
        assert!(
            addr < ARCH_REGS && data < ARCH_REGS,
            "register name out of range"
        );
        Inst {
            opcode: Opcode::Store,
            dst: None,
            src1: Some(addr),
            src2: Some(data),
        }
    }

    /// Creates a conditional branch reading `src1`.
    pub fn branch(cond: u8) -> Self {
        assert!(cond < ARCH_REGS, "register name out of range");
        Inst {
            opcode: Opcode::Branch,
            dst: None,
            src1: Some(cond),
            src2: None,
        }
    }

    /// The functional-unit routing kind for this instruction.
    pub fn kind(&self) -> InstKind {
        match self.opcode {
            Opcode::Load => InstKind::Load,
            Opcode::Store => InstKind::Store,
            Opcode::Branch => InstKind::Branch,
            _ => InstKind::Compute,
        }
    }

    /// Whether this instruction belongs to the SIMD class.
    pub fn is_simd(&self) -> bool {
        self.opcode.class() == OpcodeClass::Simd
    }

    /// Iterates over the source registers that are present.
    pub fn sources(&self) -> impl Iterator<Item = u8> + '_ {
        [self.src1, self.src2].into_iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_operands() {
        let i = Inst::new(Opcode::Imul, 1, 2, 3);
        assert_eq!(i.dst, Some(1));
        assert_eq!(i.sources().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(i.kind(), InstKind::Compute);

        let l = Inst::load(4, 5);
        assert_eq!(l.kind(), InstKind::Load);
        assert_eq!(l.dst, Some(4));

        let s = Inst::store(6, 7);
        assert_eq!(s.kind(), InstKind::Store);
        assert_eq!(s.dst, None);

        let b = Inst::branch(8);
        assert_eq!(b.kind(), InstKind::Branch);
        assert_eq!(b.sources().count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_registers() {
        let _ = Inst::new(Opcode::Alu, ARCH_REGS, 0, 0);
    }

    #[test]
    fn simd_detection() {
        assert!(Inst::new(Opcode::Vor, 0, 1, 2).is_simd());
        assert!(!Inst::new(Opcode::Imul, 0, 1, 2).is_simd());
    }
}
