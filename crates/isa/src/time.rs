//! Picosecond-resolution simulation time.
//!
//! The event-based simulator and the hardware delay models deal with
//! quantities spanning nine orders of magnitude: sub-nanosecond clock
//! periods (a 5 GHz cycle is 200 ps) up to multi-second benchmark runs.
//! Using `f64` seconds everywhere would make event ordering fragile, so
//! simulation time is an integer number of picoseconds.
//!
//! `u64` picoseconds overflow after ~213 days of simulated time, far beyond
//! any experiment in this repository.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulation time (picoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (picoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw picoseconds.
    #[inline]
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picoseconds since the epoch.
    #[inline]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulators never observe
    /// time running backwards.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is in the future"),
        )
    }

    /// Saturating version of [`SimTime::since`]: zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw picoseconds.
    #[inline]
    pub const fn from_picos(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from float seconds, rounding to the nearest
    /// picosecond. Negative or non-finite inputs are clamped to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e12).round() as u64)
    }

    /// Creates a duration from float microseconds (the unit the paper
    /// reports nearly all delays in). Clamps like [`from_secs_f64`].
    ///
    /// [`from_secs_f64`]: SimDuration::from_secs_f64
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Duration in float seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Duration in float microseconds (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Whether the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The duration of `cycles` clock cycles at `freq_hz`.
    ///
    /// Computed in integer arithmetic as `cycles * 1e12 / freq_hz` with
    /// 128-bit intermediates, so it is exact for any realistic frequency.
    pub fn from_cycles(cycles: u64, freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "frequency must be positive");
        let ps = (cycles as u128 * 1_000_000_000_000u128) / freq_hz as u128;
        SimDuration(ps as u64)
    }

    /// How many whole clock cycles at `freq_hz` fit in this duration.
    pub fn to_cycles(self, freq_hz: u64) -> u64 {
        assert!(freq_hz > 0, "frequency must be positive");
        ((self.0 as u128 * freq_hz as u128) / 1_000_000_000_000u128) as u64
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a non-negative float factor, rounding to picoseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be >= 0");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} µs", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_nanos(1).as_picos(), 1_000);
        assert_eq!(SimDuration::from_micros(1).as_picos(), 1_000_000);
        assert_eq!(SimDuration::from_millis(1).as_picos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(3), SimDuration::from_nanos(3_000));
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_micros_f64(31.5);
        assert_eq!(d.as_picos(), 31_500_000);
        assert!((d.as_micros_f64() - 31.5).abs() < 1e-9);
    }

    #[test]
    fn float_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn cycles_at_5ghz_are_200ps() {
        let d = SimDuration::from_cycles(1, 5_000_000_000);
        assert_eq!(d.as_picos(), 200);
        assert_eq!(d.to_cycles(5_000_000_000), 1);
    }

    #[test]
    fn cycles_roundtrip_large() {
        let f = 3_700_000_000; // 3.7 GHz
        let cycles = 12_345_678_901;
        let d = SimDuration::from_cycles(cycles, f);
        // Rounding down can lose at most one cycle.
        let back = d.to_cycles(f);
        assert!(back == cycles || back == cycles - 1, "{back} vs {cycles}");
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        let u = t + SimDuration::from_micros(5);
        assert_eq!(u.since(t), SimDuration::from_micros(5));
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn since_panics_on_backwards_time() {
        let t = SimTime::ZERO + SimDuration::from_micros(1);
        let _ = SimTime::ZERO.since(t);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(31).to_string(), "31.000 µs");
        assert_eq!(SimDuration::from_picos(5).to_string(), "5 ps");
        assert_eq!(SimDuration::from_millis(14).to_string(), "14.000 ms");
    }

    #[test]
    fn sum_and_scaling() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
        assert_eq!(total * 2, SimDuration::from_micros(20));
        assert_eq!(total / 5, SimDuration::from_micros(2));
        assert_eq!(total.mul_f64(0.5), SimDuration::from_micros(5));
    }
}
