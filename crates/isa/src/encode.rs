//! x86-64 instruction *encoding* for the faultable set — the inverse of
//! [`crate::decode`].
//!
//! The `#DO` security argument needs the decoder to agree with the
//! architectural encodings on every faultable instruction; this module
//! provides the other half of that differential oracle. [`EncodeSpec`]
//! describes one concrete encoding choice (legacy SSE vs VEX, register
//! vs each memory addressing form, immediates), [`EncodeSpec::encode`]
//! emits its bytes, and [`EncodeSpec::expected`] states the [`Decoded`]
//! the decoder must produce for them. The opcode table here is written
//! out independently of `decode`'s `map_opcode` on purpose: a transcription
//! mistake in either table shows up as a round-trip disagreement under
//! fuzzing rather than cancelling out.

use crate::decode::{AesVariant, Decoded};
use crate::opcode::Opcode;

/// One row of the encoder's opcode table: `(map, opcode byte, family,
/// AES variant, has imm8)`. Maps 1/2/3 are `0F`, `0F 38`, `0F 3A`.
pub const SIMD_FORMS: &[(u8, u8, Opcode, Option<AesVariant>, bool)] = &[
    (1, 0xEB, Opcode::Vor, None, false),
    (1, 0xEF, Opcode::Vxor, None, false),
    (1, 0xDB, Opcode::Vand, None, false),
    (1, 0xDF, Opcode::Vandn, None, false),
    (1, 0x51, Opcode::Vsqrtpd, None, false),
    (1, 0xE2, Opcode::Vpsrad, None, false),
    (1, 0x76, Opcode::Vpcmp, None, false), // PCMPEQD
    (1, 0x66, Opcode::Vpcmp, None, false), // PCMPGTD
    (1, 0xDE, Opcode::Vpmax, None, false), // PMAXUB
    (1, 0xD4, Opcode::Vpaddq, None, false),
    (2, 0xDC, Opcode::Aesenc, Some(AesVariant::Enc), false),
    (2, 0xDD, Opcode::Aesenc, Some(AesVariant::EncLast), false),
    (2, 0xDE, Opcode::Aesenc, Some(AesVariant::Dec), false),
    (2, 0xDF, Opcode::Aesenc, Some(AesVariant::DecLast), false),
    (2, 0x3D, Opcode::Vpmax, None, false), // PMAXSD
    (3, 0x44, Opcode::Vpclmulqdq, None, true),
];

/// The ModRM r/m operand of an encoding: a register or one concrete
/// memory addressing form (the decoder only reports *that* a memory
/// operand was used, so each form must still yield the right length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rm {
    /// Register operand (`mod = 3`); 0–15, high half needs REX.B / VEX.B.
    Reg(u8),
    /// `[base]` with `mod = 0`; base must avoid 4 (SIB) and 5 (RIP).
    Base(u8),
    /// `[base + disp8]` (`mod = 1`); base must avoid 4.
    Disp8(u8, u8),
    /// `[base + disp32]` (`mod = 2`); base must avoid 4.
    Disp32(u8, u32),
    /// `[rip + disp32]` (`mod = 0`, `rm = 5`).
    Rip(u32),
    /// `[rsp]` via a SIB byte (`mod = 0`, `rm = 4`, SIB `0x24`).
    Sib,
}

impl Rm {
    /// The register the decoder reports for this operand, if any.
    pub fn reg(self) -> Option<u8> {
        match self {
            Rm::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Appends the ModRM byte (with `reg` in bits 3..6) and any SIB /
    /// displacement bytes.
    fn emit(self, reg_field: u8, out: &mut Vec<u8>) {
        let modrm = |modb: u8, rm: u8| (modb << 6) | ((reg_field & 7) << 3) | (rm & 7);
        match self {
            Rm::Reg(r) => out.push(modrm(3, r)),
            Rm::Base(b) => {
                debug_assert!(b & 7 != 4 && b & 7 != 5);
                out.push(modrm(0, b));
            }
            Rm::Disp8(b, d) => {
                debug_assert!(b & 7 != 4);
                out.push(modrm(1, b));
                out.push(d);
            }
            Rm::Disp32(b, d) => {
                debug_assert!(b & 7 != 4);
                out.push(modrm(2, b));
                out.extend_from_slice(&d.to_le_bytes());
            }
            Rm::Rip(d) => {
                out.push(modrm(0, 5));
                out.extend_from_slice(&d.to_le_bytes());
            }
            Rm::Sib => {
                out.push(modrm(0, 4));
                out.push(0x24); // scale 1, no index, base rsp
            }
        }
    }
}

/// One concrete, valid encoding of a faultable instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeSpec {
    /// A SIMD / AES-class instruction: `form` indexes [`SIMD_FORMS`].
    Simd {
        /// Index into [`SIMD_FORMS`].
        form: usize,
        /// Emit the VEX (3-byte `C4`) form instead of legacy `66 …`.
        vex: bool,
        /// ModRM.reg operand (0–15).
        reg: u8,
        /// ModRM.rm operand.
        rm: Rm,
        /// VEX.vvvv second source (0–15; ignored for legacy forms).
        vvvv: u8,
        /// Trailing immediate (emitted only when the form takes one).
        imm8: u8,
    },
    /// `IMUL r, r/m` (`0F AF`).
    ImulRegRm {
        /// ModRM.reg operand (0–15).
        reg: u8,
        /// ModRM.rm operand.
        rm: Rm,
    },
    /// `IMUL r, r/m, imm8` (`6B`) or `imm32` (`69`).
    ImulImm {
        /// ModRM.reg operand (0–15).
        reg: u8,
        /// ModRM.rm operand.
        rm: Rm,
        /// `Some` → the `6B` imm8 form; `None` → the `69` imm32 form.
        imm8: Option<u8>,
        /// The 32-bit immediate for the `69` form.
        imm32: u32,
    },
    /// One-operand `MUL` (`F7 /4`) or `IMUL` (`F7 /5`).
    MulGroup3 {
        /// `true` → `IMUL` (`/5`); `false` → `MUL` (`/4`).
        signed: bool,
        /// ModRM.rm operand (register must be 0–7: no REX is emitted).
        rm: Rm,
    },
}

impl EncodeSpec {
    /// Emits the instruction bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        match *self {
            EncodeSpec::Simd {
                form,
                vex,
                reg,
                rm,
                vvvv,
                imm8,
            } => {
                let (map, op, _, _, has_imm) = SIMD_FORMS[form];
                if vex {
                    // 3-byte VEX: C4, then inverted R/X/B + map, then
                    // W=0, inverted vvvv, L=0, pp=01 (the 66 class).
                    let b = matches!(rm, Rm::Reg(r) if r >= 8);
                    let p1 = (u8::from(reg < 8) << 7) | (1 << 6) | (u8::from(!b) << 5) | map;
                    let p2 = ((!vvvv & 0xF) << 3) | 0b01;
                    out.extend_from_slice(&[0xC4, p1, p2, op]);
                } else {
                    out.push(0x66);
                    push_rex(reg, rm, &mut out);
                    push_opcode_map(map, op, &mut out);
                }
                rm.emit(reg, &mut out);
                if has_imm {
                    out.push(imm8);
                }
            }
            EncodeSpec::ImulRegRm { reg, rm } => {
                push_rex(reg, rm, &mut out);
                out.extend_from_slice(&[0x0F, 0xAF]);
                rm.emit(reg, &mut out);
            }
            EncodeSpec::ImulImm {
                reg,
                rm,
                imm8,
                imm32,
            } => {
                push_rex(reg, rm, &mut out);
                out.push(if imm8.is_some() { 0x6B } else { 0x69 });
                rm.emit(reg, &mut out);
                match imm8 {
                    Some(v) => out.push(v),
                    None => out.extend_from_slice(&imm32.to_le_bytes()),
                }
            }
            EncodeSpec::MulGroup3 { signed, rm } => {
                out.push(0xF7);
                rm.emit(if signed { 5 } else { 4 }, &mut out);
            }
        }
        out
    }

    /// The [`Decoded`] the decoder must return for [`EncodeSpec::encode`].
    pub fn expected(&self) -> Decoded {
        let length = self.encode().len();
        match *self {
            EncodeSpec::Simd {
                form,
                vex,
                reg,
                rm,
                vvvv,
                imm8,
            } => {
                let (_, _, opcode, aes, has_imm) = SIMD_FORMS[form];
                Decoded {
                    opcode,
                    aes,
                    length,
                    reg,
                    rm_reg: rm.reg(),
                    vvvv: vex.then_some(vvvv),
                    imm8: has_imm.then_some(imm8),
                    vex,
                }
            }
            EncodeSpec::ImulRegRm { reg, rm } => Decoded {
                opcode: Opcode::Imul,
                aes: None,
                length,
                reg,
                rm_reg: rm.reg(),
                vvvv: None,
                imm8: None,
                vex: false,
            },
            EncodeSpec::ImulImm { reg, rm, imm8, .. } => Decoded {
                opcode: Opcode::Imul,
                aes: None,
                length,
                reg,
                rm_reg: rm.reg(),
                vvvv: None,
                imm8,
                vex: false,
            },
            EncodeSpec::MulGroup3 { rm, .. } => Decoded {
                opcode: Opcode::Imul,
                aes: None,
                length,
                reg: 0, // implicit RDX:RAX
                rm_reg: rm.reg(),
                vvvv: None,
                imm8: None,
                vex: false,
            },
        }
    }
}

/// Emits a REX prefix when either operand uses registers 8–15.
fn push_rex(reg: u8, rm: Rm, out: &mut Vec<u8>) {
    let r = reg >= 8;
    let b = matches!(rm, Rm::Reg(x) if x >= 8);
    if r || b {
        out.push(0x40 | (u8::from(r) << 2) | u8::from(b));
    }
}

/// Emits the escape bytes for opcode map 1/2/3 plus the opcode byte.
fn push_opcode_map(map: u8, op: u8, out: &mut Vec<u8>) {
    match map {
        1 => out.extend_from_slice(&[0x0F, op]),
        2 => out.extend_from_slice(&[0x0F, 0x38, op]),
        3 => out.extend_from_slice(&[0x0F, 0x3A, op]),
        _ => unreachable!("opcode map {map}"),
    }
}

/// Re-encodes a [`Decoded`] into one canonical byte form that must
/// decode back to the same semantic fields (opcode, AES variant,
/// operands, immediate, VEX-ness) — the `decode → encode → decode`
/// round-trip oracle. Returns `None` for descriptors no valid encoding
/// produces (e.g. an `Aesenc` without an AES variant).
pub fn reencode(d: &Decoded) -> Option<Vec<u8>> {
    let rm = match d.rm_reg {
        Some(r) => Rm::Reg(r),
        None => Rm::Base(3), // [rbx]: the simplest memory form
    };
    if d.opcode == Opcode::Imul {
        if d.vex || d.vvvv.is_some() || d.aes.is_some() {
            return None;
        }
        let spec = match d.imm8 {
            Some(v) => EncodeSpec::ImulImm {
                reg: d.reg,
                rm,
                imm8: Some(v),
                imm32: 0,
            },
            None => EncodeSpec::ImulRegRm { reg: d.reg, rm },
        };
        return Some(spec.encode());
    }
    let form = SIMD_FORMS
        .iter()
        .position(|&(_, _, opcode, aes, has_imm)| {
            opcode == d.opcode && aes == d.aes && has_imm == d.imm8.is_some()
        })?;
    if d.vex != d.vvvv.is_some() {
        return None;
    }
    Some(
        EncodeSpec::Simd {
            form,
            vex: d.vex,
            reg: d.reg,
            rm,
            vvvv: d.vvvv.unwrap_or(0),
            imm8: d.imm8.unwrap_or(0),
        }
        .encode(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn simd(form: usize, vex: bool, reg: u8, rm: Rm) -> EncodeSpec {
        EncodeSpec::Simd {
            form,
            vex,
            reg,
            rm,
            vvvv: 1,
            imm8: 0x10,
        }
    }

    #[test]
    fn encodes_the_documented_aesenc_form() {
        // SIMD_FORMS[10] = (2, 0xDC, Aesenc, Enc): 66 0F 38 DC C1.
        let spec = simd(10, false, 0, Rm::Reg(1));
        assert_eq!(spec.encode(), vec![0x66, 0x0F, 0x38, 0xDC, 0xC1]);
    }

    #[test]
    fn every_form_round_trips_through_the_decoder() {
        for form in 0..SIMD_FORMS.len() {
            for vex in [false, true] {
                for rm in [Rm::Reg(2), Rm::Reg(9), Rm::Sib, Rm::Disp8(5, 0x10)] {
                    let spec = simd(form, vex, 11, rm);
                    let bytes = spec.encode();
                    let d = decode(&bytes)
                        .unwrap_or_else(|e| panic!("form {form} vex {vex} {rm:?}: {e}"));
                    assert_eq!(d, spec.expected(), "form {form} vex {vex} {rm:?}");
                }
            }
        }
    }

    #[test]
    fn imul_forms_round_trip() {
        let cases = [
            EncodeSpec::ImulRegRm {
                reg: 3,
                rm: Rm::Reg(12),
            },
            EncodeSpec::ImulImm {
                reg: 0,
                rm: Rm::Rip(0x100),
                imm8: Some(7),
                imm32: 0,
            },
            EncodeSpec::ImulImm {
                reg: 9,
                rm: Rm::Reg(1),
                imm8: None,
                imm32: 0x12345678,
            },
            EncodeSpec::MulGroup3 {
                signed: true,
                rm: Rm::Reg(3),
            },
            EncodeSpec::MulGroup3 {
                signed: false,
                rm: Rm::Disp32(6, 0x40),
            },
        ];
        for spec in cases {
            let d = decode(&spec.encode()).unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(d, spec.expected(), "{spec:?}");
        }
    }

    #[test]
    fn reencode_is_a_decode_fixpoint() {
        let bytes = [0xC4u8, 0xE3, 0x71, 0x44, 0xC2, 0x01]; // VPCLMULQDQ
        let d = decode(&bytes).unwrap();
        let re = reencode(&d).expect("valid decode must re-encode");
        let d2 = decode(&re).unwrap();
        assert_eq!(
            (d2.opcode, d2.aes, d2.reg, d2.rm_reg),
            (d.opcode, d.aes, d.reg, d.rm_reg)
        );
        assert_eq!((d2.vvvv, d2.imm8, d2.vex), (d.vvvv, d.imm8, d.vex));
    }
}
