//! Monte-Carlo simulation: sampled delays and trace randomness.
//!
//! The deterministic engine charges the *mean* measured delays, as the
//! paper's simulator does. Real transitions jitter (Fig. 8's 20-rep
//! scatter; the 7700X's σ = 292 µs!), and synthetic traces are one draw
//! from the burst process. This module re-runs a configuration with
//! per-run sampled [`suit_hw::TransitionDelays`] and trace seeds and reports the
//! resulting distributions — the error bars the single numbers live in.
//!
//! Runs are independent, so the campaign fans out through the
//! [`suit_exec`] work-stealing executor. Every run's randomness is a
//! [`SuitRng::fork`] of the top-level seed keyed by the run index — a
//! pure function of `(cfg.seed, run)` — so the resulting distributions
//! are **bit-identical for every thread count** while wall-clock drops
//! by ~N× on N cores.

use suit_exec::Threads;
use suit_hw::CpuModel;
use suit_rng::{Rng, SuitRng};
use suit_telemetry::{Telemetry, TelemetrySnapshot};
use suit_trace::WorkloadProfile;

use crate::engine::{simulate_telemetry, SimConfig};

/// Summary statistics of one metric across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// Per-run values, sorted ascending by [`f64::total_cmp`]; NaNs (if
    /// any run degenerated) sort to the end and are tallied in
    /// [`Distribution::nans`].
    pub values: Vec<f64>,
    /// Number of NaN values among [`Distribution::values`]. A NaN metric
    /// marks a degenerate run; it is surfaced here instead of aborting
    /// the whole campaign from inside a worker.
    pub nans: usize,
}

impl Distribution {
    fn from(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty());
        values.sort_by(f64::total_cmp);
        let nans = values.iter().filter(|v| v.is_nan()).count();
        Distribution { values, nans }
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64).sqrt()
    }

    /// Linear-interpolated percentile (`p` in [0, 100]).
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p));
        let n = self.values.len();
        if n == 1 {
            return self.values[0];
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.values[lo] * (1.0 - frac) + self.values[hi] * frac
    }

    /// Minimum observed value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Maximum observed value.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("non-empty")
    }
}

/// Distributions of the headline metrics across Monte-Carlo runs.
#[derive(Debug, Clone, PartialEq)]
pub struct McSummary {
    /// Performance deltas.
    pub perf: Distribution,
    /// Power deltas.
    pub power: Distribution,
    /// Efficiency deltas.
    pub eff: Distribution,
    /// Efficient-curve residencies.
    pub residency: Distribution,
}

/// One run's metric vector: perf, power, efficiency, residency.
type RunMetrics = [f64; 4];

/// Event-ring capacity of each run's private recorder in
/// [`monte_carlo_telemetry`]: bounds merged-trace memory at
/// `runs × capacity` while keeping counters and histograms exact.
const MC_RUN_EVENT_CAPACITY: usize = 4096;

/// Executes Monte-Carlo run `i`: samples realised transition delays and a
/// trace seed from the fork of the top-level seed keyed by `i`, then
/// simulates. Pure in `(cpu, profile, cfg, i)`; `tele` is observational
/// only.
fn one_run(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    cfg: &SimConfig,
    i: usize,
    tele: &Telemetry,
) -> RunMetrics {
    let mut rng = SuitRng::seed_from_u64(cfg.seed).fork(i as u64);
    let mut cpu_i = cpu.clone();
    // Sample this run's realised transition delays around the measured
    // means (Figs. 8–11 spreads).
    cpu_i.delays.freq_change_us = cpu.delays.sample_freq_change(&mut rng).as_micros_f64();
    cpu_i.delays.volt_change_us = cpu.delays.sample_volt_change(&mut rng).as_micros_f64();
    // The stall tracks the realised change on stalling parts.
    if cpu.delays.freq_stall_us > 0.0 {
        cpu_i.delays.freq_stall_us = cpu_i.delays.freq_change_us.min(cpu.delays.freq_stall_us);
    }

    let mut cfg_i = cfg.clone();
    cfg_i.seed = rng.u64();
    let r = simulate_telemetry(&cpu_i, profile, &cfg_i, tele);
    [r.perf(), r.power(), r.efficiency(), r.residency()]
}

/// Runs `runs` simulations of (`cpu`, `profile`, `cfg`), each with freshly
/// sampled transition delays and a distinct trace seed, sharded across all
/// available cores. Results are identical for every thread count.
///
/// # Panics
///
/// Panics if `runs` is zero.
pub fn monte_carlo(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    cfg: &SimConfig,
    runs: usize,
) -> McSummary {
    monte_carlo_with_threads(cpu, profile, cfg, runs, Threads::Auto.count())
}

/// [`monte_carlo`] with an explicit worker count. `threads = 1` recovers
/// the serial campaign; any other count produces byte-identical
/// distributions because run `i`'s randomness is `fork(i)` of the
/// top-level seed regardless of which worker executes it.
///
/// # Panics
///
/// Panics if `runs` or `threads` is zero.
pub fn monte_carlo_with_threads(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    cfg: &SimConfig,
    runs: usize,
    threads: usize,
) -> McSummary {
    assert!(runs >= 1, "need at least one run");
    assert!(threads >= 1, "need at least one worker");
    let metrics = suit_exec::run(runs, Threads::Fixed(threads), |i| {
        one_run(cpu, profile, cfg, i, &Telemetry::off())
    });
    summarize(&metrics)
}

/// [`monte_carlo_with_threads`] with telemetry: every run records into its
/// own private recorder, and the per-run snapshots are merged
/// **position-ordered** (run 0 first, then 1, …) after all workers join.
/// Work stealing therefore never reorders the merge, so both the returned
/// metrics *and* the merged telemetry are byte-identical at any thread
/// count — the guarantee `tests/determinism.rs` pins.
///
/// Each run's event ring holds [`MC_RUN_EVENT_CAPACITY`] events; counters
/// and histograms are exact regardless.
///
/// # Panics
///
/// Panics if `runs` or `threads` is zero.
pub fn monte_carlo_telemetry(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    cfg: &SimConfig,
    runs: usize,
    threads: usize,
) -> (McSummary, TelemetrySnapshot) {
    assert!(runs >= 1, "need at least one run");
    assert!(threads >= 1, "need at least one worker");
    let (metrics, merged) = suit_exec::run_telemetry(
        runs,
        Threads::Fixed(threads),
        MC_RUN_EVENT_CAPACITY,
        |i, tele| one_run(cpu, profile, cfg, i, tele),
    );
    (summarize(&metrics), merged)
}

fn summarize(metrics: &[RunMetrics]) -> McSummary {
    let column = |k: usize| metrics.iter().map(|m| m[k]).collect();
    McSummary {
        perf: Distribution::from(column(0)),
        power: Distribution::from(column(1)),
        eff: Distribution::from(column(2)),
        residency: Distribution::from(column(3)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use suit_hw::UndervoltLevel;
    use suit_trace::profile;

    fn setup() -> (CpuModel, &'static WorkloadProfile, SimConfig) {
        (
            CpuModel::xeon_4208(),
            profile::by_name("502.gcc").unwrap(),
            SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(400_000_000),
        )
    }

    #[test]
    fn distribution_statistics() {
        let d = Distribution::from(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(d.values, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.nans, 0);
        assert!((d.mean() - 2.5).abs() < 1e-12);
        assert!((d.percentile(0.0) - 1.0).abs() < 1e-12);
        assert!((d.percentile(100.0) - 4.0).abs() < 1e-12);
        assert!((d.percentile(50.0) - 2.5).abs() < 1e-12);
        assert!(d.std() > 1.0 && d.std() < 1.5);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 4.0);
    }

    #[test]
    fn an_injected_nan_is_counted_not_fatal() {
        // A NaN metric from one degenerate run must not abort the whole
        // campaign from inside a worker thread (the old
        // `partial_cmp().expect("no NaNs")` did exactly that); it sorts
        // to the end under total_cmp and is surfaced as a count.
        let d = Distribution::from(vec![2.0, f64::NAN, 1.0]);
        assert_eq!(d.nans, 1);
        assert_eq!(&d.values[..2], &[1.0, 2.0]);
        assert!(d.values[2].is_nan());
        assert_eq!(d.min(), 1.0);
        // Statistics over a NaN-bearing sample are NaN — visible, not a
        // panic.
        assert!(d.mean().is_nan());
    }

    #[test]
    fn monte_carlo_spreads_around_the_deterministic_run() {
        let (cpu, p, cfg) = setup();
        let det = simulate(&cpu, p, &cfg);
        let mc = monte_carlo(&cpu, p, &cfg, 12);
        // The deterministic mean-delay run sits inside the MC envelope.
        assert!(
            det.efficiency() >= mc.eff.min() - 0.01,
            "{}",
            det.efficiency()
        );
        assert!(det.efficiency() <= mc.eff.max() + 0.01);
        // Seeds & sampled delays must actually produce spread.
        assert!(mc.eff.std() > 0.0);
        assert!(mc.residency.std() > 0.0);
        // But SUIT's result is robust: the envelope is tight (the paper's
        // flat-parameter observation, §6.4).
        assert!(mc.eff.max() - mc.eff.min() < 0.06, "{:?}", mc.eff);
    }

    #[test]
    fn monte_carlo_is_reproducible() {
        let (cpu, p, cfg) = setup();
        let a = monte_carlo(&cpu, p, &cfg, 5);
        let b = monte_carlo(&cpu, p, &cfg, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_the_distributions() {
        let (cpu, p, cfg) = setup();
        let serial = monte_carlo_with_threads(&cpu, p, &cfg, 9, 1);
        for threads in [2, 4, 8] {
            let parallel = monte_carlo_with_threads(&cpu, p, &cfg, 9, threads);
            assert_eq!(serial, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_campaigns() {
        let (cpu, p, mut cfg) = setup();
        let a = monte_carlo(&cpu, p, &cfg, 4);
        cfg.seed ^= 0xABCD;
        let b = monte_carlo(&cpu, p, &cfg, 4);
        assert_ne!(a, b);
    }

    #[test]
    fn telemetry_variant_matches_plain_metrics() {
        let (cpu, p, cfg) = setup();
        let plain = monte_carlo_with_threads(&cpu, p, &cfg, 4, 2);
        let (with_tele, snap) = monte_carlo_telemetry(&cpu, p, &cfg, 4, 2);
        assert_eq!(plain, with_tele, "telemetry must not perturb the campaign");
        assert!(snap.counter(suit_telemetry::Counter::DoTraps) > 0);
        assert!(snap.counter(suit_telemetry::Counter::CurveSwitches) > 0);
    }

    #[test]
    fn telemetry_merge_is_thread_count_invariant() {
        let (cpu, p, cfg) = setup();
        let (summary1, snap1) = monte_carlo_telemetry(&cpu, p, &cfg, 6, 1);
        for threads in [2, 4] {
            let (summary_n, snap_n) = monte_carlo_telemetry(&cpu, p, &cfg, 6, threads);
            assert_eq!(summary1, summary_n, "{threads} threads diverged");
            assert_eq!(snap1, snap_n, "{threads}-thread telemetry diverged");
        }
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn rejects_zero_runs() {
        let (cpu, p, cfg) = setup();
        let _ = monte_carlo(&cpu, p, &cfg, 0);
    }
}
