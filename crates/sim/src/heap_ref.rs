//! Entry points for the PR 8 event-heap engine ([`crate::event`]), kept
//! as the second reference implementation for the differential
//! equivalence suite (`tests/engine_equivalence.rs`).
//!
//! Production moved to the arena scheduler ([`crate::arena`]); this
//! module runs the identical boot / advancement / dispatch code with
//! event selection through the deterministic binary min-heap, so the
//! suite can pin arena ≡ heap ≡ legacy three ways. Not part of the
//! supported API: the adapters in [`crate::engine`] are the only
//! production entry points.

use suit_hw::CpuModel;
use suit_telemetry::Telemetry;
use suit_trace::io::TraceMeta;
use suit_trace::{Burst, WorkloadProfile};

use crate::engine::{
    boot, build_cores, build_stream_core, collect, CoreArena, CoreStream, MixedResult, SimConfig,
};
use crate::result::RunResult;

/// Reference [`crate::engine::simulate`]: the event-heap loop.
pub fn simulate(cpu: &CpuModel, profile: &WorkloadProfile, cfg: &SimConfig) -> RunResult {
    let profiles: Vec<&WorkloadProfile> = (0..cfg.cores).map(|_| profile).collect();
    let (cores, workload) = build_cores(cpu, &profiles, cfg);
    run_cores_heap(cpu, cores, workload, cfg, &Telemetry::off())
        .0
        .domain
}

/// Reference [`crate::engine::simulate_mixed`]: the event-heap loop.
pub fn simulate_mixed(
    cpu: &CpuModel,
    profiles: &[&WorkloadProfile],
    cfg: &SimConfig,
) -> MixedResult {
    let (cores, workload) = build_cores(cpu, profiles, cfg);
    run_cores_heap(cpu, cores, workload, cfg, &Telemetry::off()).0
}

/// Reference [`crate::engine::run_stream`]: the event-heap loop.
pub fn run_stream<I>(cpu: &CpuModel, meta: &TraceMeta, bursts: I, cfg: &SimConfig) -> RunResult
where
    I: IntoIterator<Item = Burst>,
{
    let core = build_stream_core(cpu, meta, bursts.into_iter(), cfg);
    run_cores_heap(cpu, vec![core], meta.name.clone(), cfg, &Telemetry::off())
        .0
        .domain
}

fn run_cores_heap<I: Iterator<Item = Burst>>(
    cpu: &CpuModel,
    mut cores: Vec<CoreStream<I>>,
    workload: String,
    cfg: &SimConfig,
    tele: &Telemetry,
) -> (MixedResult, Option<Vec<crate::engine::PointChange>>) {
    assert!(!cores.is_empty(), "need at least one core");
    let (mut hw, mut os) = boot(cpu, cfg, tele);
    // The reference loops build a private arena per run (no scratch
    // reuse): storage is shared with production, scheduling is not.
    let mut arena = CoreArena::default();
    arena.reset(&mut cores, tele);
    crate::event::run_domain(&mut cores, &mut arena, &mut hw, &mut os, tele);
    collect(&cores, &arena, hw, &os, workload)
}
