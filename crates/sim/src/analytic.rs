//! Closed-form evaluation of the emulation and no-SIMD modes.
//!
//! Neither mode ever leaves the efficient curve, so no event interleaving
//! matters and the paper evaluates them arithmetically (§6.2):
//!
//! * **Emulation** — the run is slowed by the benchmark's *no-SIMD
//!   recompile overhead* (the emulated instructions execute scalar code,
//!   §5.8) and each disabled instruction additionally pays the
//!   emulation-call round trip of §5.3 (0.77 µs Intel / 0.27 µs AMD, two
//!   kernel transitions).
//! * **No-SIMD** — the application was compiled without SSE/AVX, contains
//!   no faultable instructions at all (IMUL is hardened in hardware), and
//!   runs permanently on the efficient curve at the recompile overhead.
//!
//! Both still carry the 4-cycle-IMUL penalty, like everything on a SUIT
//! CPU.

use suit_hw::{CpuKind, CpuModel, UndervoltLevel};
use suit_isa::SimDuration;
use suit_trace::{TraceGen, WorkloadProfile};

use crate::engine::{imul_penalty, point_table};
use crate::result::RunResult;
use suit_core::OperatingStrategy;

fn is_intel(cpu: &CpuModel) -> bool {
    !matches!(cpu.kind, CpuKind::AmdRyzen7700X)
}

/// The shared closed form of both always-on-E modes: the run is the
/// baseline slowed by the no-SIMD recompile factor and the hardened-IMUL
/// penalty, plus `events` emulation round trips.
fn analytic_run(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    level: UndervoltLevel,
    cap: u64,
    events: u64,
) -> RunResult {
    assert!(cap > 0, "instruction budget must be positive");
    let pen = 1.0 - imul_penalty(profile);
    let e = point_table(cpu, level, OperatingStrategy::Emulation, 1.0).e_point();
    let no_simd = profile.no_simd_overhead(is_intel(cpu));
    let base_rate = profile.ipc * cpu.steady.base_freq_ghz * 1e9;
    let base_secs = cap as f64 / base_rate;

    let exec_secs = base_secs / (e.perf * (1.0 + no_simd) * pen);
    let emu_secs = events as f64 * cpu.emulation_call_delay().as_secs_f64();
    let duration = SimDuration::from_secs_f64(exec_secs + emu_secs);

    RunResult {
        workload: profile.name.to_string(),
        duration,
        baseline_duration: SimDuration::from_secs_f64(base_secs),
        energy_rel: e.power * duration.as_secs_f64(),
        time_e: duration,
        time_cf: SimDuration::ZERO,
        time_cv: SimDuration::ZERO,
        time_stall: SimDuration::from_secs_f64(emu_secs),
        events,
        exceptions: events,
        timer_fires: 0,
        thrash_hits: 0,
    }
}

/// Simulates the emulation strategy (𝑒) for one workload.
///
/// `max_insts` caps the virtual trace like [`crate::engine::SimConfig`].
pub fn simulate_emulation(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    level: UndervoltLevel,
    seed: u64,
    max_insts: Option<u64>,
) -> RunResult {
    let cap = max_insts
        .unwrap_or(profile.total_insts)
        .min(profile.total_insts);

    // Count the disabled instructions the trace executes.
    let mut events: u64 = 0;
    let mut insts: u64 = 0;
    for b in TraceGen::new(profile, seed) {
        insts += b.total_insts();
        if insts > cap {
            break;
        }
        events += u64::from(b.events);
    }

    analytic_run(cpu, profile, level, cap, events)
}

/// Simulates a workload recompiled without SIMD instructions (§5.8, the
/// SPECnoSIMD column of Table 6): no faultable instructions exist, so the
/// CPU never leaves the efficient curve.
pub fn simulate_no_simd(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    level: UndervoltLevel,
    max_insts: Option<u64>,
) -> RunResult {
    let cap = max_insts
        .unwrap_or(profile.total_insts)
        .min(profile.total_insts);
    analytic_run(cpu, profile, level, cap, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_trace::profile;

    const CAP: Option<u64> = Some(2_000_000_000);

    #[test]
    fn nginx_emulation_is_catastrophic() {
        // Table 6 𝒜∞ 𝑒: Nginx performance −98 % — every AES instruction of
        // every HTTPS request traps into the kernel twice.
        let cpu = CpuModel::i9_9900k();
        let p = profile::by_name("Nginx").unwrap();
        let r = simulate_emulation(&cpu, p, UndervoltLevel::Mv97, 1, CAP);
        assert!(r.perf() < -0.90, "perf {:.3}", r.perf());
        assert!(r.residency() > 0.999, "emulation never leaves E");
    }

    #[test]
    fn quiet_benchmark_emulates_for_free() {
        // 557.xz executes faultable instructions so rarely that emulation
        // keeps nearly the whole efficient-curve benefit.
        let cpu = CpuModel::i9_9900k();
        let p = profile::by_name("557.xz").unwrap();
        let r = simulate_emulation(&cpu, p, UndervoltLevel::Mv97, 1, CAP);
        assert!(r.perf() > 0.0, "perf {:.3}", r.perf());
        assert!(r.efficiency() > 0.15, "eff {:.3}", r.efficiency());
    }

    #[test]
    fn dense_simd_benchmark_dies_under_emulation() {
        // 519.lbm: a faultable SIMD op every ~25 instructions.
        let cpu = CpuModel::i9_9900k();
        let p = profile::by_name("519.lbm").unwrap();
        let r = simulate_emulation(&cpu, p, UndervoltLevel::Mv97, 1, CAP);
        assert!(r.perf() < -0.70, "perf {:.3}", r.perf());
    }

    #[test]
    fn amd_emulates_cheaper_than_intel() {
        // §6.6: emulation is more efficient on ℬ "due to the shorter
        // exception delay" (0.27 µs vs 0.77 µs round trip).
        let a = CpuModel::i9_9900k();
        let b = CpuModel::ryzen_7700x();
        let p = profile::by_name("502.gcc").unwrap();
        let ra = simulate_emulation(&a, p, UndervoltLevel::Mv97, 1, CAP);
        let rb = simulate_emulation(&b, p, UndervoltLevel::Mv97, 1, CAP);
        // Compare the pure emulation-call overhead (stall share).
        let oa = ra.time_stall.as_secs_f64() / ra.baseline_duration.as_secs_f64();
        let ob = rb.time_stall.as_secs_f64() / rb.baseline_duration.as_secs_f64();
        assert!(ob < oa, "AMD {ob:.4} vs Intel {oa:.4}");
    }

    #[test]
    fn x264_gains_from_no_simd_on_amd() {
        // Table 6 ℬ∞ 𝑒: 525.x264 performance +19 % — compiling without
        // SIMD makes it 22 % faster on the 7700X (Table 4), which emulation
        // inherits.
        let cpu = CpuModel::ryzen_7700x();
        let p = profile::by_name("525.x264").unwrap();
        let r = simulate_emulation(&cpu, p, UndervoltLevel::Mv97, 1, CAP);
        assert!(r.perf() > 0.10, "perf {:.3}", r.perf());
    }

    #[test]
    fn no_simd_mode_has_no_events() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("508.namd").unwrap();
        let r = simulate_no_simd(&cpu, p, UndervoltLevel::Mv97, CAP);
        assert_eq!(r.events, 0);
        assert_eq!(r.exceptions, 0);
        // namd loses 22 % from dropping SIMD — worse than its SUIT result.
        assert!(r.perf() < -0.15, "perf {:.3}", r.perf());
    }

    #[test]
    fn no_simd_emulation_relationship() {
        // §6.7: "Emulation is always worse [than no-SIMD] as it incurs the
        // same overhead plus the emulation call overhead."
        let cpu = CpuModel::i9_9900k();
        for p in profile::spec_suite() {
            let e = simulate_emulation(&cpu, p, UndervoltLevel::Mv97, 1, Some(500_000_000));
            let n = simulate_no_simd(&cpu, p, UndervoltLevel::Mv97, Some(500_000_000));
            assert!(e.perf() <= n.perf() + 1e-9, "{}", p.name);
        }
    }
}
