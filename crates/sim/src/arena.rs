//! The production arena scheduler: flat struct-of-arrays core state,
//! thread-local reusable scratch, linear argmin event selection, and a
//! batched intra-burst fast path for lone cores.
//!
//! This loop is behaviourally identical — bit for bit, including the
//! telemetry counters — to the event-heap reference in [`crate::event`]
//! and the legacy scan loop in [`crate::legacy`]; the differential suite
//! in `tests/engine_equivalence.rs` pins all three against each other.
//! What changed is purely mechanical:
//!
//! * **Storage.** The hot per-core state lives in a [`CoreArena`]
//!   (dense `f64`/`u32` columns) instead of per-core structs, and both
//!   the arena and the `live` set are reused from a thread-local
//!   [`DomainScratch`] across runs. A warmed-up run allocates nothing in
//!   the quantum loop; [`Counter::EngineScratchAllocs`] ticks only when
//!   a reset had to grow a buffer, which the equivalence suite asserts
//!   stays at zero after warm-up.
//! * **Selection.** The per-round heap rebuild of the reference engine
//!   is replaced by a single linear scan for the minimum `(tick, id)`.
//!   Scanning pending → timer → cores in ascending id with strictly-less
//!   replacement reproduces the heap's pop order exactly (lowest id wins
//!   ties), without pushing ticks that lose anyway.
//! * **Batching.** When exactly one core is live, instructions are
//!   enabled, and the core sits at the start of an intra-burst stride,
//!   every event of the stride advances the identical quantum: same
//!   `dt`, same instruction count, same energy increment. The fast path
//!   proves from the timer deadline, the pending arrival and the
//!   remaining trace length how many consecutive events nothing can
//!   preempt, then commits them in one pass — `n` sequential f64
//!   subtractions and additions, exactly the operations the per-event
//!   loop would have performed, minus the scheduling overhead.

use std::cell::RefCell;

use suit_core::SuitOs;
use suit_isa::{SimDuration, SimTime};
use suit_telemetry::{Counter, Telemetry};
use suit_trace::Burst;

use crate::engine::{dispatch_event, CoreArena, CoreStream, Hw, NextEvent};

/// Reusable per-thread simulation scratch: the hot-state arena and the
/// live-core set. One instance serves every domain run on the thread —
/// Monte-Carlo re-runs and fleet epochs stop paying per-run allocations.
pub(crate) struct DomainScratch {
    pub(crate) arena: CoreArena,
    pub(crate) live: Vec<u32>,
}

thread_local! {
    static SCRATCH: RefCell<DomainScratch> = RefCell::new(DomainScratch {
        arena: CoreArena::default(),
        live: Vec::new(),
    });
}

/// Hands the caller the thread's [`DomainScratch`]. Domain runs never
/// nest, so the `RefCell` borrow cannot conflict.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut DomainScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The production domain loop: runs `cores` (one shared DVFS domain) to
/// completion against the booted `hw`/`os` state. `arena` must be
/// [`reset`](CoreArena::reset) for these cores; `live` is scratch.
pub(crate) fn run_domain<I: Iterator<Item = Burst>>(
    cores: &mut [CoreStream<I>],
    arena: &mut CoreArena,
    live: &mut Vec<u32>,
    hw: &mut Hw,
    os: &mut SuitOs,
    tele: &Telemetry,
) {
    if live.capacity() < cores.len() {
        tele.count(Counter::EngineScratchAllocs);
    }
    live.clear();
    live.extend(0..cores.len() as u32);
    let mut guard: u64 = 0;

    loop {
        guard += 1;
        assert!(guard < 2_000_000_000, "simulation failed to converge");

        live.retain(|&i| !arena.finished(i as usize));
        if live.is_empty() {
            break;
        }

        if live.len() == 1 {
            let i = live[0] as usize;
            let batched = burst_fast_path(arena, i, hw, tele);
            if batched > 0 {
                guard = guard.saturating_add(batched);
                continue;
            }
        }

        // Earliest (tick, id), ids: pending 0 < timer 1 < core 2 + i.
        // Seeding with pending, then replacing only on strictly earlier
        // ticks while visiting timer and cores in ascending id,
        // reproduces the reference heap's pop order exactly.
        let perf = hw.perf();
        let mut t_next = SimTime::from_picos(u64::MAX);
        let mut kind = NextEvent::Idle;
        if let Some((_, t)) = hw.pending {
            t_next = t;
            kind = NextEvent::Pending;
        }
        if let Some(t) = hw.timer.expires_at() {
            if t < t_next {
                t_next = t;
                kind = NextEvent::Timer;
            }
        }
        for &i in live.iter() {
            let i = i as usize;
            // The same arithmetic, in the same order, as the reference
            // engines: instructions to the next point of interest over
            // the current effective rate. Byte-identity hangs on this
            // expression not being algebraically "simplified".
            let t = hw.now + SimDuration::from_secs_f64(arena.rem_next(i) / (arena.rate[i] * perf));
            if t < t_next {
                t_next = t;
                kind = NextEvent::Core(i);
            }
        }

        // Advance execution to the event: identical per-quantum
        // arithmetic, striding over the arena's dense columns.
        let dt = t_next.saturating_since(hw.now);
        if !dt.is_zero() {
            let dt_secs = dt.as_secs_f64();
            for &i in live.iter() {
                let i = i as usize;
                let insts = arena.rate[i] * perf * dt_secs;
                arena.advance(i, insts);
            }
            tele.count(Counter::EngineQuanta);
            tele.add(Counter::CoreSteps, live.len() as u64);
            hw.run_for(dt);
        }

        dispatch_event(kind, arena, cores, hw, os, tele);
    }
}

/// Batches consecutive intra-burst events of a lone live core. Returns
/// the number of events committed; `0` means the caller must take the
/// general path (the very next event needs full dispatch).
///
/// Entry conditions — each one guards a way the per-event loop could do
/// something other than "advance one stride, count one event":
///
/// * instructions enabled: a `#DO` would call into the OS policy;
/// * `burst_left > 0` and `rem_event` bitwise equal to `within + 1`:
///   the core sits exactly at the start of an intra-burst stride, so
///   every batched event reloads the same stride;
/// * the stride's quantum is non-zero (a zero `dt` skips the advance
///   phase entirely in the per-event loop).
///
/// Batch length is then bounded by whichever comes first: the burst
/// running out of events, the trace end (`rem_total` falling to the
/// stride length — checked against the *sequentially* decremented
/// remainder, reproducing the per-event f64 order), the deadline timer
/// (which each event resets, so events 2… only require `dt < deadline`,
/// while event 1 races the currently armed expiry), or a pending
/// p-state arrival. Timer and pending win ties by component id, hence
/// the `<=` comparisons against the core's tick.
fn burst_fast_path(arena: &mut CoreArena, i: usize, hw: &mut Hw, tele: &Telemetry) -> u64 {
    if hw.disabled() || arena.burst_left[i] == 0 {
        return 0;
    }
    let w = arena.within[i] + 1.0;
    if arena.rem_event[i].to_bits() != w.to_bits() {
        return 0;
    }
    let rate = arena.rate[i] * hw.perf();
    let dt = SimDuration::from_secs_f64(w / rate);
    if dt.is_zero() {
        return 0;
    }
    // Instructions one stride actually advances, after `dt` rounded
    // through picoseconds — the per-event loop's exact operand.
    let stride = rate * dt.as_secs_f64();
    let now0 = hw.now;
    let dt_ps = dt.as_picos();

    let cap_timer: u64 = match hw.timer.expires_at() {
        None => u64::MAX,
        // Event 1 races the currently armed expiry; it re-arms the
        // timer at its own tick, so each later event only requires the
        // stride to beat the full deadline.
        Some(expiry) => {
            if expiry <= now0 + dt {
                0
            } else if hw.timer.deadline() > dt {
                u64::MAX
            } else {
                1
            }
        }
    };
    let cap_pending: u64 = match hw.pending {
        None => u64::MAX,
        // Event k sits at now0 + k·dt; it must come strictly before the
        // arrival (pending wins ties by id).
        Some((_, at)) => {
            let avail = at.saturating_since(now0).as_picos();
            if avail <= dt_ps {
                0
            } else {
                (avail - 1) / dt_ps
            }
        }
    };
    let cap = u64::from(arena.burst_left[i])
        .min(cap_timer)
        .min(cap_pending);

    let mut rem_total = arena.rem_total[i];
    let mut n: u64 = 0;
    while n < cap {
        // An event with rem_total ≤ stride length is the trace-end
        // event — full dispatch handles it.
        if rem_total <= w {
            break;
        }
        rem_total -= stride;
        n += 1;
    }
    if n == 0 {
        return 0;
    }

    arena.rem_total[i] = rem_total;
    // rem_event stays bitwise `w`: each consumed event reloaded the
    // stride, and the batch ends exactly on that reload.
    arena.burst_left[i] -= n as u32;
    arena.events[i] += n;
    hw.run_for_n(dt, n);
    tele.add(Counter::EngineQuanta, n);
    tele.add(Counter::CoreSteps, n);
    // One reset at the final event's tick lands the timer where n
    // per-event resets would have.
    hw.timer.reset(hw.now);
    n
}
