//! The discrete-event simulation engine (Fig. 15).
//!
//! One engine instance simulates one DVFS *domain*: a set of cores that
//! share the curve state (one core for the per-core-domain CPUs ℬ and 𝒞 or
//! single-core runs of 𝒜; up to the full core count for 𝒜's single shared
//! domain, where a `#DO` on any core drags every core to the conservative
//! curve and back — §6.2, "a DVFS curve change subsequently impacts all
//! cores").
//!
//! Time advances from event to event:
//!
//! 1. a core reaches its next faultable instruction (trap or execute),
//! 2. the deadline timer expires (switch back to the efficient curve),
//! 3. a pending asynchronous p-state change arrives (e.g. the 𝑓𝑉
//!    strategy's voltage raise completing 335 µs after it was requested).
//!
//! Between events, every core executes instructions at
//! `IPC × f_base × perf(point)` and the domain draws `power(point)`
//! relative package power; stalls (switch waits, exception entries) burn
//! time and power without instruction progress. The engine implements
//! [`CpuControl`], so the *unmodified* Listing 1 policy from `suit-core`
//! drives it.

use suit_core::adaptive::AdaptiveConfig;
use suit_core::deadline::DeadlineTimer;
use suit_core::strategy::StrategyParams;
use suit_core::{
    CpuControl, CurveSelect, CurveTarget, DisabledOpcode, HandlerAction, OperatingStrategy,
    SuitMsrs, SuitOs,
};
use suit_hw::{CpuModel, DelayTable, OperatingPoint, PointKind, UndervoltLevel};
use suit_isa::{SimDuration, SimTime};
use suit_telemetry::{Counter, EventKind, Hist, Telemetry};
use suit_trace::io::TraceMeta;
use suit_trace::{Burst, TraceGen, WorkloadProfile};

use crate::result::RunResult;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Operating strategy (must be a curve-switching one for the engine;
    /// use [`crate::analytic`] for emulation / no-SIMD).
    pub strategy: OperatingStrategy,
    /// Strategy parameters (Table 7).
    pub params: StrategyParams,
    /// Undervolt level of the efficient curve.
    pub level: UndervoltLevel,
    /// Cores sharing this DVFS domain, each running one copy of the
    /// workload (SPECrate style).
    pub cores: usize,
    /// RNG seed for trace generation (per-core streams use `seed + core`).
    pub seed: u64,
    /// Optional cap on simulated instructions per core (tests use small
    /// caps; `None` runs the profile's full virtual length).
    pub max_insts: Option<u64>,
    /// Record p-state changes for timeline figures.
    pub record_timeline: bool,
    /// §6.8 dynamic strategy selection: when set, the OS starts in
    /// emulation mode and flips between emulation and 𝑓𝑉 per the observed
    /// `#DO` traffic (the `strategy` field then only shapes the operating
    /// points; use [`OperatingStrategy::FreqVolt`]).
    pub adaptive: Option<AdaptiveConfig>,
}

impl SimConfig {
    /// A single-core 𝑓𝑉 run at −97 mV with Intel Table 7 parameters.
    pub fn fv_intel(level: UndervoltLevel) -> Self {
        SimConfig {
            strategy: OperatingStrategy::FreqVolt,
            params: StrategyParams::intel(),
            level,
            cores: 1,
            seed: 0x5017,
            max_insts: None,
            record_timeline: false,
            adaptive: None,
        }
    }

    /// A single-core run with the §6.8 adaptive emulation/𝑓𝑉 chooser.
    pub fn adaptive_intel(level: UndervoltLevel) -> Self {
        let mut cfg = Self::fv_intel(level);
        cfg.adaptive = Some(AdaptiveConfig::intel());
        cfg
    }

    /// A single-core frequency-only run with AMD Table 7 parameters.
    pub fn f_amd(level: UndervoltLevel) -> Self {
        SimConfig {
            strategy: OperatingStrategy::Frequency,
            params: StrategyParams::amd(),
            level,
            cores: 1,
            seed: 0x5017,
            max_insts: None,
            record_timeline: false,
            adaptive: None,
        }
    }

    /// Returns a copy capped to `max_insts` simulated instructions.
    pub fn with_max_insts(mut self, max_insts: u64) -> Self {
        self.max_insts = Some(max_insts);
        self
    }

    /// Returns a copy with `cores` cores sharing the domain.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }
}

/// Performance penalty of the SUIT-hardened 4-cycle `IMUL` for a workload
/// (§6.1 / Fig. 14): the extra cycle is mostly hidden by out-of-order
/// execution; dense multiply code (525.x264, 0.99 % IMUL) exposes ~70 % of
/// it, sparse code ~30 %. Evaluates to ≈1.5 % for x264 and ≈0.03 % on
/// SPEC average — the paper's measured 1.60 % / 0.03 %.
pub fn imul_penalty(profile: &WorkloadProfile) -> f64 {
    let exposure = if profile.imul_fraction > 0.005 {
        0.7
    } else {
        0.3
    };
    profile.imul_fraction * profile.ipc * exposure
}

/// The three operating points of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Point {
    /// Efficient curve.
    E,
    /// Conservative by frequency.
    Cf,
    /// Conservative by voltage.
    Cv,
}

impl Point {
    /// The telemetry payload identifying this point in curve-switch and
    /// residency events.
    fn arg(self) -> u64 {
        match self {
            Point::E => 0,
            Point::Cf => 1,
            Point::Cv => 2,
        }
    }

    /// The delay-table row for transitions targeting this point.
    fn kind(self) -> PointKind {
        match self {
            Point::E => PointKind::Efficient,
            Point::Cf => PointKind::ConservativeFreq,
            Point::Cv => PointKind::ConservativeVolt,
        }
    }
}

/// One recorded p-state change (for Figs. 5 and 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointChange {
    /// When the domain reached the point.
    pub at: SimTime,
    /// The point reached.
    pub point: Point,
}

pub(crate) struct PointTable {
    e: OperatingPoint,
    cf: OperatingPoint,
    cv: OperatingPoint,
}

impl PointTable {
    fn get(&self, p: Point) -> OperatingPoint {
        match p {
            Point::E => self.e,
            Point::Cf => self.cf,
            Point::Cv => self.cv,
        }
    }

    /// The efficient operating point (used by the analytic modes, which
    /// never leave `E`).
    pub(crate) fn e_point(&self) -> OperatingPoint {
        self.e
    }
}

/// Hardware-side state: everything the OS policy manipulates through
/// [`CpuControl`], plus the accounting. Shared between the production
/// arena scheduler in [`crate::arena`], the event-heap reference in
/// [`crate::event`], and the legacy scan loop kept for the differential
/// equivalence suite.
pub(crate) struct Hw {
    pub(crate) now: SimTime,
    pub(crate) point: Point,
    pub(crate) pending: Option<(Point, SimTime)>,
    /// The architectural MSR pair: the engine drives the *real* register
    /// model from `suit-core`, so the §3.2 invariant (efficient curve ⇒
    /// faultable set disabled) is enforced on every simulated transition,
    /// not just asserted in unit tests.
    msrs: SuitMsrs,
    pub(crate) timer: DeadlineTimer,
    /// Transition delays precomputed per (target point, transition kind)
    /// at boot — the hot path does one table lookup where it used to
    /// re-derive sums from the µs-valued [`suit_hw::TransitionDelays`].
    pub(crate) dtab: DelayTable,
    points: PointTable,
    // Accounting.
    energy_rel: f64,
    time_e: SimDuration,
    time_cf: SimDuration,
    time_cv: SimDuration,
    time_stall: SimDuration,
    timeline: Option<Vec<PointChange>>,
    // Observability (never feeds back into simulation state, so results
    // are identical with telemetry on or off).
    tele: Telemetry,
    /// When the current operating point was entered (residency spans).
    point_since: SimTime,
    /// Start of the conservative episode in progress, if any (the span
    /// from leaving `E` to arriving back on it).
    conservative_since: Option<SimTime>,
}

impl Hw {
    pub(crate) fn disabled(&self) -> bool {
        // The engine's opcode check: is the (shared) faultable set armed?
        self.msrs.is_disabled(suit_isa::Opcode::Aesenc)
    }

    pub(crate) fn perf(&self) -> f64 {
        self.points.get(self.point).perf
    }

    fn power(&self) -> f64 {
        self.points.get(self.point).power
    }

    /// Advances time with execution: instructions flow, state time and
    /// energy accumulate.
    pub(crate) fn run_for(&mut self, dt: SimDuration) {
        self.energy_rel += self.power() * dt.as_secs_f64();
        // The telemetry time counters accumulate the *same* dt as the
        // engine aggregates, so residency re-derived from telemetry is
        // exact, not approximate.
        match self.point {
            Point::E => {
                self.time_e += dt;
                self.tele.add(Counter::TimeEfficientPs, dt.as_picos());
            }
            Point::Cf => {
                self.time_cf += dt;
                self.tele
                    .add(Counter::TimeConservativeFreqPs, dt.as_picos());
            }
            Point::Cv => {
                self.time_cv += dt;
                self.tele
                    .add(Counter::TimeConservativeVoltPs, dt.as_picos());
            }
        }
        self.now += dt;
    }

    /// Advances `n` identical execution quanta of `dt` in one call — the
    /// batched form of [`run_for`](Self::run_for) behind the arena
    /// engine's intra-burst fast path. Energy still accumulates with `n`
    /// sequential additions (f64 addition is not associative, and the
    /// batch must reproduce the per-event sums bit for bit); the integer
    /// time accounting takes the closed form.
    pub(crate) fn run_for_n(&mut self, dt: SimDuration, n: u64) {
        let p = self.power() * dt.as_secs_f64();
        for _ in 0..n {
            self.energy_rel += p;
        }
        let total = dt * n;
        match self.point {
            Point::E => {
                self.time_e += total;
                self.tele.add(Counter::TimeEfficientPs, total.as_picos());
            }
            Point::Cf => {
                self.time_cf += total;
                self.tele
                    .add(Counter::TimeConservativeFreqPs, total.as_picos());
            }
            Point::Cv => {
                self.time_cv += total;
                self.tele
                    .add(Counter::TimeConservativeVoltPs, total.as_picos());
            }
        }
        self.now += total;
    }

    /// Advances time without execution (switch waits, exception entries).
    fn stall_for(&mut self, dt: SimDuration) {
        self.energy_rel += self.power() * dt.as_secs_f64();
        self.time_stall += dt;
        self.tele.count(Counter::Stalls);
        self.tele.add(Counter::TimeStallPs, dt.as_picos());
        self.tele.observe(Hist::StallPs, dt.as_picos());
        self.tele.span(EventKind::Stall, self.now, self.now + dt, 0);
        self.now += dt;
    }

    fn set_point(&mut self, p: Point) {
        self.write_curve_for(p);
        // Close the residency span of the outgoing point, mark the
        // switch, and track conservative episodes (E → … → E).
        self.tele.span(
            EventKind::Residency,
            self.point_since,
            self.now,
            self.point.arg(),
        );
        self.tele.instant(EventKind::CurveSwitch, self.now, p.arg());
        self.tele.count(Counter::CurveSwitches);
        match p {
            Point::E => self.tele.count(Counter::CurveSwitchToEfficient),
            Point::Cf | Point::Cv => self.tele.count(Counter::CurveSwitchToConservative),
        }
        if self.point == Point::E && p != Point::E {
            self.conservative_since = Some(self.now);
        } else if p == Point::E {
            if let Some(t0) = self.conservative_since.take() {
                self.tele
                    .observe(Hist::ConservativeEpisodePs, self.now.since(t0).as_picos());
            }
        }
        self.point_since = self.now;
        self.point = p;
        if let Some(tl) = &mut self.timeline {
            tl.push(PointChange {
                at: self.now,
                point: p,
            });
        }
    }

    fn target_point(t: CurveTarget) -> Point {
        match t {
            CurveTarget::E => Point::E,
            CurveTarget::Cf => Point::Cf,
            CurveTarget::Cv => Point::Cv,
        }
    }

    /// Applies a pending asynchronous p-state arrival. Frequency raises
    /// toward a conservative point stall Intel cores briefly (§5.2,
    /// Fig. 11); the return to the efficient curve is charged wait-free,
    /// following §4.1: "SUIT only has to delay execution when switching
    /// from the efficient to the conservative curve; in the other
    /// direction ... it does not need to wait".
    pub(crate) fn apply_pending(&mut self, target: Point) {
        if target != Point::E {
            self.stall_for(self.dtab.freq_stall());
        }
        self.set_point(target);
    }

    /// Reflects a point change into the curve-select MSR, enforcing the
    /// §3.2 ordering (a rejected write is a simulator bug: the Listing 1
    /// policy must never produce one).
    fn write_curve_for(&mut self, p: Point) {
        let curve = match p {
            Point::E => CurveSelect::Efficient,
            Point::Cf | Point::Cv => CurveSelect::Conservative,
        };
        self.msrs
            .write_curve(curve)
            .expect("Listing 1 must satisfy the Section 3.2 MSR invariant");
        self.tele.count(Counter::MsrCurveWrites);
        debug_assert!(self.msrs.invariant_holds());
    }
}

impl CpuControl for Hw {
    fn now(&self) -> SimTime {
        self.now
    }

    fn change_pstate_wait(&mut self, target: CurveTarget) {
        // A synchronous change supersedes any in-flight request.
        self.pending = None;
        let raw_target = target;
        let target = Self::target_point(target);
        if self.point == target {
            return;
        }
        // The handler only has to *wait* when the current point is unsafe
        // for the faulting instruction — i.e. the efficient curve. From an
        // already-conservative point (e.g. a #DO at C_V racing a pending
        // return to E), the instruction can execute immediately and the
        // p-state change completes in the background.
        if self.point != Point::E {
            self.change_pstate_async(raw_target);
            return;
        }
        // Frequency-only moves (→ `C_f`, → `E`) wait for the clock; a
        // full p-state move (→ `C_V`) waits voltage-then-frequency (§5.2,
        // Xeon PCPS behaviour). The table rows encode exactly those sums.
        let wait = self.dtab.sync_wait(target.kind());
        self.stall_for(wait);
        self.set_point(target);
    }

    fn change_pstate_async(&mut self, target: CurveTarget) {
        let target = Self::target_point(target);
        if self.point == target {
            // Reaching the current point cancels any pending move —
            // §4.3: returning to E "cancels the voltage change".
            self.pending = None;
            return;
        }
        // Frequency-only targets arrive after the clock settles; a
        // background voltage raise (→ `C_V`) after the rail settles.
        let delay = self.dtab.async_delay(target.kind());
        self.pending = Some((target, self.now + delay));
    }

    fn set_instructions_disabled(&mut self, disabled: bool) {
        if disabled {
            self.msrs.disable_faultable();
        } else {
            self.msrs
                .enable_all()
                .expect("instructions are only re-enabled on the conservative curve");
        }
        debug_assert!(self.msrs.invariant_holds());
    }

    fn set_timer_interrupt(&mut self, deadline: SimDuration) {
        self.timer.arm(self.now, deadline);
    }
}

/// One core's *cold* identity: the burst source plus everything the hot
/// loop never touches. Generic over the burst source: a profile-driven
/// [`TraceGen`] for synthetic runs, or any plain `Iterator<Item = Burst>`
/// (e.g. a `suit-store` streaming reader) for recorded-trace replay — the
/// event loop is identical either way. The per-instruction scheduling
/// state lives in [`CoreArena`], struct-of-arrays style, so the quantum
/// loop strides over dense `f64` columns instead of these fat structs.
pub(crate) struct CoreStream<I> {
    source: I,
    /// Workload name reported in per-core outcomes.
    name: String,
    /// This core's instruction rate at `point.perf = 1`, insts/sec
    /// (IPC × base frequency × IMUL-hardening penalty). Seeds the
    /// arena's `rate` column.
    pub(crate) base_rate: f64,
    /// Instruction cap of this core's trace; seeds the arena's
    /// `rem_total` column.
    cap: f64,
    /// Baseline (no-SUIT) duration of this core's trace.
    baseline: SimDuration,
    /// The stream's dominant opcode, cached for exception records.
    dominant_opcode: suit_isa::Opcode,
}

/// Hot per-core scheduling state in struct-of-arrays layout, indexed by
/// domain core id. One arena is (re)used across runs — see
/// [`crate::arena`] for the thread-local scratch — and [`reset`] seeds it
/// from the cold [`CoreStream`]s, so the inner quantum loop touches only
/// these flat columns and allocates nothing.
///
/// [`reset`]: CoreArena::reset
#[derive(Debug, Default)]
pub(crate) struct CoreArena {
    /// Instructions until the next faultable instruction (∞ when the
    /// source is exhausted).
    pub(crate) rem_event: Vec<f64>,
    /// Instructions until the core's trace ends.
    pub(crate) rem_total: Vec<f64>,
    /// Instruction rate at `point.perf = 1` (copied from the stream).
    pub(crate) rate: Vec<f64>,
    /// Events left in the current burst after the upcoming one.
    pub(crate) burst_left: Vec<u32>,
    /// Intra-burst event stride of the current burst.
    pub(crate) within: Vec<f64>,
    /// When the core finished its trace (`Some` ⇒ finished).
    pub(crate) finish_time: Vec<Option<SimTime>>,
    /// Faultable instructions the core has executed.
    pub(crate) events: Vec<u64>,
}

impl<'p> CoreStream<TraceGen<'p>> {
    fn new(profile: &'p WorkloadProfile, cpu: &CpuModel, seed: u64, cap: u64) -> Self {
        let pen = 1.0 - imul_penalty(profile);
        let nominal = profile.ipc * cpu.steady.base_freq_ghz * 1e9;
        Self::from_source(
            TraceGen::new(profile, seed),
            profile.name.to_string(),
            profile
                .opcode_mix
                .weights()
                .first()
                .map(|(op, _)| *op)
                .expect("non-empty mix"),
            nominal,
            nominal * pen,
            cap,
        )
    }
}

impl<I: Iterator<Item = Burst>> CoreStream<I> {
    /// Builds a stream from raw parts: `nominal` is the no-SUIT
    /// instruction rate (baseline), `rate` the SUIT-hardened one.
    fn from_source(
        source: I,
        name: String,
        dominant_opcode: suit_isa::Opcode,
        nominal: f64,
        rate: f64,
        cap: u64,
    ) -> Self {
        CoreStream {
            source,
            name,
            base_rate: rate,
            cap: cap as f64,
            baseline: SimDuration::from_secs_f64(cap as f64 / nominal),
            dominant_opcode,
        }
    }
}

impl CoreArena {
    /// Reseeds the arena for a fresh run over `cores`, reusing the
    /// column allocations. A reset that had to grow the columns ticks
    /// [`Counter::EngineScratchAllocs`] once — the equivalence suite
    /// asserts a warmed-up quantum loop never does.
    pub(crate) fn reset<I: Iterator<Item = Burst>>(
        &mut self,
        cores: &mut [CoreStream<I>],
        tele: &Telemetry,
    ) {
        let n = cores.len();
        if self.rem_event.capacity() < n {
            // The seven columns grow in lockstep; one tick per
            // allocating reset keeps the signal simple.
            tele.count(Counter::EngineScratchAllocs);
        }
        self.rem_event.clear();
        self.rem_event.resize(n, 0.0);
        self.rem_total.clear();
        self.rem_total.resize(n, 0.0);
        self.rate.clear();
        self.rate.resize(n, 0.0);
        self.burst_left.clear();
        self.burst_left.resize(n, 0);
        self.within.clear();
        self.within.resize(n, 0.0);
        self.finish_time.clear();
        self.finish_time.resize(n, None);
        self.events.clear();
        self.events.resize(n, 0);
        for (i, c) in cores.iter_mut().enumerate() {
            self.rem_total[i] = c.cap;
            self.rate[i] = c.base_rate;
            self.load_next_gap(i, &mut c.source);
        }
    }

    /// Sets `rem_event[i]` to the distance of the next faultable
    /// instruction, called when an event executes. Strides match the
    /// canonical [`Burst::event_offsets`] layout: the consumed event
    /// occupies one instruction slot, so the next event is `within + 1`
    /// (intra-burst) or `gap + 1` (next burst) instructions ahead.
    fn load_next_gap<I: Iterator<Item = Burst>>(&mut self, i: usize, source: &mut I) {
        if self.burst_left[i] > 0 {
            self.burst_left[i] -= 1;
            self.rem_event[i] = self.within[i] + 1.0;
        } else if let Some(b) = source.next() {
            self.burst_left[i] = b.events - 1;
            self.within[i] = f64::from(b.within_gap_insts);
            self.rem_event[i] = b.gap_insts as f64 + 1.0;
        } else {
            self.rem_event[i] = f64::INFINITY;
        }
    }

    pub(crate) fn finished(&self, i: usize) -> bool {
        self.finish_time[i].is_some()
    }

    pub(crate) fn advance(&mut self, i: usize, insts: f64) {
        self.rem_event[i] -= insts;
        self.rem_total[i] -= insts;
    }

    /// Charges a core-local stall (exception entry, user-space emulation)
    /// as *instruction debt*: the core makes no progress for `dt` while
    /// the rest of the domain keeps executing — unlike a frequency-change
    /// stall, which freezes the whole domain.
    fn stall_local(&mut self, i: usize, dt: SimDuration, rate: f64) {
        let debt = dt.as_secs_f64() * rate;
        self.rem_event[i] += debt;
        self.rem_total[i] += debt;
    }

    /// Instructions until core `i`'s next point of interest.
    pub(crate) fn rem_next(&self, i: usize) -> f64 {
        self.rem_total[i].min(self.rem_event[i])
    }
}

/// The kind of event a scheduler selected. Ties are resolved pending →
/// timer → lowest core index; the legacy scan encodes that priority in
/// its comparison order, the event heap in its component-id ordering.
pub(crate) enum NextEvent {
    Pending,
    Timer,
    Core(usize),
    Idle, // all cores finished
}

/// Per-core outcome of a (possibly heterogeneous) multi-core run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreOutcome {
    /// The workload this core ran.
    pub workload: String,
    /// When the core finished its trace.
    pub finish: SimDuration,
    /// The no-SUIT baseline duration of the same trace.
    pub baseline: SimDuration,
    /// Faultable instructions this core executed.
    pub events: u64,
}

impl CoreOutcome {
    /// Performance change vs. this core's own baseline.
    pub fn perf(&self) -> f64 {
        self.baseline.as_secs_f64() / self.finish.as_secs_f64() - 1.0
    }
}

/// Result of a heterogeneous multi-core simulation: the shared-domain
/// aggregate plus per-core outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedResult {
    /// Domain-level aggregate (duration = last core's finish; power and
    /// residency are domain properties).
    pub domain: RunResult,
    /// One outcome per core, in input order.
    pub per_core: Vec<CoreOutcome>,
}

/// Simulates `profile` on `cpu` under `cfg` and returns the run result.
///
/// # Panics
///
/// Panics if `cfg.strategy` is [`OperatingStrategy::Emulation`] (use
/// [`crate::analytic::simulate_emulation`]) or `cfg.cores` is zero.
pub fn simulate(cpu: &CpuModel, profile: &WorkloadProfile, cfg: &SimConfig) -> RunResult {
    simulate_telemetry(cpu, profile, cfg, &Telemetry::off())
}

/// Like [`simulate`], recording counters, histograms and timeline events
/// through `tele` (see `suit-telemetry`). Telemetry is strictly
/// observational: the returned result is byte-identical to [`simulate`]'s.
pub fn simulate_telemetry(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    cfg: &SimConfig,
    tele: &Telemetry,
) -> RunResult {
    let profiles: Vec<&WorkloadProfile> = (0..cfg.cores).map(|_| profile).collect();
    run(cpu, &profiles, cfg, tele).0.domain
}

/// Simulates a *heterogeneous* mix: one workload per core, all sharing the
/// domain (`cfg.cores` is ignored; the slice length sets the core count).
/// This is the consolidation scenario §6.4 alludes to — office cores next
/// to a crypto-serving core on one laptop DVFS domain.
pub fn simulate_mixed(
    cpu: &CpuModel,
    profiles: &[&WorkloadProfile],
    cfg: &SimConfig,
) -> MixedResult {
    run(cpu, profiles, cfg, &Telemetry::off()).0
}

/// [`simulate_mixed`] with a telemetry handle attached.
pub fn simulate_mixed_telemetry(
    cpu: &CpuModel,
    profiles: &[&WorkloadProfile],
    cfg: &SimConfig,
    tele: &Telemetry,
) -> MixedResult {
    run(cpu, profiles, cfg, tele).0
}

/// Like [`simulate`], but also returns the p-state change timeline
/// (recording is forced on), for the Fig. 5 / Fig. 6 experiments.
pub fn simulate_with_timeline(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    cfg: &SimConfig,
) -> (RunResult, Vec<PointChange>) {
    simulate_with_timeline_telemetry(cpu, profile, cfg, &Telemetry::off())
}

/// [`simulate_with_timeline`] with a telemetry handle attached.
pub fn simulate_with_timeline_telemetry(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    cfg: &SimConfig,
    tele: &Telemetry,
) -> (RunResult, Vec<PointChange>) {
    let mut cfg = cfg.clone();
    cfg.record_timeline = true;
    let profiles: Vec<&WorkloadProfile> = (0..cfg.cores).map(|_| profile).collect();
    let (result, timeline) = run(cpu, &profiles, &cfg, tele);
    (result.domain, timeline.unwrap_or_default())
}

pub(crate) fn run(
    cpu: &CpuModel,
    profiles: &[&WorkloadProfile],
    cfg: &SimConfig,
    tele: &Telemetry,
) -> (MixedResult, Option<Vec<PointChange>>) {
    let (cores, workload) = build_cores(cpu, profiles, cfg);
    run_cores(cpu, cores, workload, cfg, tele)
}

/// Builds the per-core streams and the aggregate workload label for a
/// profile-driven run. Shared by the event-heap engine and the legacy
/// reference loop so both simulate the identical instruction streams.
pub(crate) fn build_cores<'p>(
    cpu: &CpuModel,
    profiles: &[&'p WorkloadProfile],
    cfg: &SimConfig,
) -> (Vec<CoreStream<TraceGen<'p>>>, String) {
    assert!(!profiles.is_empty(), "need at least one core");
    let cores: Vec<CoreStream<TraceGen>> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let cap = cfg.max_insts.unwrap_or(p.total_insts).min(p.total_insts);
            CoreStream::new(p, cpu, cfg.seed.wrapping_add(i as u64), cap)
        })
        .collect();
    let workload = if profiles.len() == 1 || profiles.iter().all(|p| p.name == profiles[0].name) {
        profiles[0].name.to_string()
    } else {
        let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
        format!("mix({})", names.join("+"))
    };
    (cores, workload)
}

/// Simulates a *recorded* trace streamed from `bursts` on a single core
/// — the out-of-core replay entry point. The source can be anything that
/// yields [`Burst`]s (a `suit-store` streaming reader, a decoded
/// `SUITTRC1` vector, a generator); the event loop is the same code path
/// as [`simulate`], so results are byte-identical for identical burst
/// sequences regardless of how they are stored.
///
/// `meta` supplies the instruction rate (`ipc`) and the virtual trace
/// length; `cfg.max_insts` caps the replay as usual. Recorded traces
/// already embody the recorded machine's IMUL behaviour, so no
/// profile-model hardening penalty is applied. `cfg.cores` is ignored:
/// one recorded stream drives one core.
pub fn run_stream<I>(cpu: &CpuModel, meta: &TraceMeta, bursts: I, cfg: &SimConfig) -> RunResult
where
    I: IntoIterator<Item = Burst>,
{
    run_stream_telemetry(cpu, meta, bursts, cfg, &Telemetry::off())
}

/// [`run_stream`] with a telemetry handle attached.
pub fn run_stream_telemetry<I>(
    cpu: &CpuModel,
    meta: &TraceMeta,
    bursts: I,
    cfg: &SimConfig,
    tele: &Telemetry,
) -> RunResult
where
    I: IntoIterator<Item = Burst>,
{
    let core = build_stream_core(cpu, meta, bursts.into_iter(), cfg);
    run_cores(cpu, vec![core], meta.name.clone(), cfg, tele)
        .0
        .domain
}

/// Builds the single replay core for a recorded-trace stream. Shared by
/// the event-heap engine and the legacy reference loop.
pub(crate) fn build_stream_core<I: Iterator<Item = Burst>>(
    cpu: &CpuModel,
    meta: &TraceMeta,
    bursts: I,
    cfg: &SimConfig,
) -> CoreStream<std::iter::Peekable<I>> {
    assert!(
        meta.ipc.is_finite() && meta.ipc > 0.0,
        "trace IPC must be positive"
    );
    let cap = cfg
        .max_insts
        .unwrap_or(meta.total_insts)
        .min(meta.total_insts);
    assert!(cap > 0, "trace virtual length must be positive");
    let mut source = bursts.peekable();
    // The exception record needs *a* faultable opcode (the policy never
    // branches on it); use the trace's first burst, like the profile path
    // uses the mix's dominant entry.
    let dominant = source
        .peek()
        .map(|b| b.opcode)
        .unwrap_or(suit_isa::Opcode::Aesenc);
    let nominal = meta.ipc * cpu.steady.base_freq_ghz * 1e9;
    CoreStream::from_source(source, meta.name.clone(), dominant, nominal, nominal, cap)
}

/// Runs a set of cores sharing one DVFS domain to completion on the
/// arena scheduler ([`crate::arena`]) and collects the results. This is
/// the single production entry point behind every `simulate*` and
/// `run_stream*` adapter; the hot state lives in the thread-local
/// [`CoreArena`] scratch, so back-to-back runs (Monte-Carlo, fleet
/// epochs) reuse one set of allocations.
pub(crate) fn run_cores<I: Iterator<Item = Burst>>(
    cpu: &CpuModel,
    mut cores: Vec<CoreStream<I>>,
    workload: String,
    cfg: &SimConfig,
    tele: &Telemetry,
) -> (MixedResult, Option<Vec<PointChange>>) {
    assert!(!cores.is_empty(), "need at least one core");
    let (mut hw, mut os) = boot(cpu, cfg, tele);
    crate::arena::with_scratch(|scratch| {
        scratch.arena.reset(&mut cores, tele);
        crate::arena::run_domain(
            &mut cores,
            &mut scratch.arena,
            &mut scratch.live,
            &mut hw,
            &mut os,
            tele,
        );
        collect(&cores, &scratch.arena, hw, &os, workload)
    })
}

/// Boots the hardware-side state and the OS policy for one domain run:
/// validates the configuration, builds the operating-point table, and
/// performs the §3.2 boot write order (disable the faultable set, then
/// select the efficient curve).
pub(crate) fn boot(cpu: &CpuModel, cfg: &SimConfig, tele: &Telemetry) -> (Hw, SuitOs) {
    assert!(
        cfg.max_insts != Some(0),
        "instruction budget must be positive (got max_insts = Some(0))"
    );
    assert!(
        cfg.strategy != OperatingStrategy::Emulation,
        "the engine models curve switching; emulation is closed-form (analytic module)"
    );
    // §6.2 note: the analytic emulation path also charges the no-SIMD
    // recompile overhead; the engine's adaptive mode charges only the
    // per-event call (the handler emulates just the one instruction).

    let points = point_table(cpu, cfg.level, cfg.strategy, 1.0);

    let os = match cfg.adaptive {
        Some(adaptive) => SuitOs::new_adaptive(cfg.params, adaptive),
        None => SuitOs::new(cfg.strategy, cfg.params),
    }
    .with_telemetry(tele.clone());
    // Boot like the OS would: disable the faultable set, then select the
    // efficient curve — the only write order the MSRs accept (§3.2).
    let mut msrs = SuitMsrs::suit_cpu();
    msrs.disable_faultable();
    msrs.write_curve(CurveSelect::Efficient)
        .expect("faultable set disabled at boot");
    let hw = Hw {
        now: SimTime::ZERO,
        point: Point::E, // boots already on the efficient curve
        pending: None,
        msrs,
        timer: DeadlineTimer::new(),
        // Precomputed per-(point, transition) delays; Monte-Carlo runs
        // mutate the CPU's µs-valued delays *before* boot, so jittered
        // samples flow through the table automatically.
        dtab: DelayTable::new(&cpu.delays),
        points,
        energy_rel: 0.0,
        time_e: SimDuration::ZERO,
        time_cf: SimDuration::ZERO,
        time_cv: SimDuration::ZERO,
        time_stall: SimDuration::ZERO,
        timeline: cfg.record_timeline.then(Vec::new),
        tele: tele.clone(),
        point_since: SimTime::ZERO,
        conservative_since: None,
    };
    (hw, os)
}

/// Reacts to one scheduler-selected event. Shared verbatim between the
/// arena engine, the event-heap reference, and the legacy scan loop:
/// the schedulers may only differ in how they *find* the next event,
/// never in how they process it, so the differential suite checks pure
/// scheduling.
pub(crate) fn dispatch_event<I: Iterator<Item = Burst>>(
    kind: NextEvent,
    arena: &mut CoreArena,
    cores: &mut [CoreStream<I>],
    hw: &mut Hw,
    os: &mut SuitOs,
    tele: &Telemetry,
) {
    match kind {
        NextEvent::Pending => {
            let (target, _) = hw.pending.take().expect("pending checked above");
            hw.apply_pending(target);
        }
        NextEvent::Timer => {
            if hw.timer.take_expired(hw.now) {
                os.on_timer_interrupt(hw);
            }
        }
        NextEvent::Core(i) => arena.core_event(i, &mut cores[i], hw, os, tele),
        NextEvent::Idle => unreachable!("loop guard handles completion"),
    }
}

impl CoreArena {
    /// Processes core `i` reaching its next point of interest: trace
    /// end, or a faultable instruction at the head of the pipeline.
    /// `core` is the matching cold stream (burst source + identity).
    pub(crate) fn core_event<I: Iterator<Item = Burst>>(
        &mut self,
        i: usize,
        core: &mut CoreStream<I>,
        hw: &mut Hw,
        os: &mut SuitOs,
        tele: &Telemetry,
    ) {
        if self.rem_total[i] <= self.rem_event[i] {
            // Trace end for this core.
            self.rem_total[i] = 0.0;
            self.finish_time[i] = Some(hw.now);
            return;
        }
        // A faultable instruction is at the head of the pipeline.
        self.rem_event[i] = 0.0;
        if hw.disabled() {
            // #DO: exception entry is core-local — the faulting
            // core loses the time, the rest of the domain keeps
            // executing.
            let rate_i = self.rate[i] * hw.perf();
            self.stall_local(i, hw.dtab.exception(), rate_i);
            let ex = DisabledOpcode::new(core.peek_opcode(), i, hw.now);
            match os.on_disabled_opcode(hw, &ex) {
                HandlerAction::SwitchedToConservative => {}
                HandlerAction::Emulated => {
                    // §5.3: the measured emulation round trip
                    // *includes* the exception entry already
                    // charged above — charge only the remainder,
                    // again core-locally.
                    let remainder = hw.dtab.emulation_remainder();
                    self.stall_local(i, remainder, rate_i);
                    let call = hw.dtab.emulation_call();
                    tele.span(EventKind::EmulationCall, hw.now, hw.now + call, i as u64);
                    tele.observe(Hist::EmulationCallPs, call.as_picos());
                }
            }
        }
        // The instruction completes (natively post-switch, or via
        // emulation) and resets the hardware deadline timer (§4.1).
        self.events[i] += 1;
        hw.timer.reset(hw.now);
        self.load_next_gap(i, &mut core.source);
    }
}

/// Collects the per-core outcomes and the domain aggregate after a run.
pub(crate) fn collect<I>(
    cores: &[CoreStream<I>],
    arena: &CoreArena,
    hw: Hw,
    os: &SuitOs,
    workload: String,
) -> (MixedResult, Option<Vec<PointChange>>) {
    // Close the final residency span so the exported timeline covers the
    // whole run.
    hw.tele
        .span(EventKind::Residency, hw.point_since, hw.now, hw.point.arg());

    let stats = os.stats();
    let per_core: Vec<CoreOutcome> = cores
        .iter()
        .enumerate()
        .map(|(i, c)| CoreOutcome {
            workload: c.name.clone(),
            finish: arena.finish_time[i].unwrap_or(hw.now).since(SimTime::ZERO),
            baseline: c.baseline,
            events: arena.events[i],
        })
        .collect();
    let domain = RunResult {
        workload,
        duration: hw.now.since(SimTime::ZERO),
        baseline_duration: per_core
            .iter()
            .map(|c| c.baseline)
            .max()
            .expect("at least one core"),
        energy_rel: hw.energy_rel,
        time_e: hw.time_e,
        time_cf: hw.time_cf,
        time_cv: hw.time_cv,
        time_stall: hw.time_stall,
        events: per_core.iter().map(|c| c.events).sum(),
        exceptions: stats.exceptions,
        timer_fires: stats.timer_fires,
        thrash_hits: stats.thrash_hits,
    };
    (MixedResult { domain, per_core }, hw.timeline)
}

impl<I> CoreStream<I> {
    /// The opcode of the faultable instruction currently at the head.
    /// The engine only needs *a* faultable opcode for the exception
    /// record (per-event opcode fidelity matters to the fault model,
    /// which consumes traces directly), so this is cached at stream
    /// construction rather than rebuilt per exception.
    fn peek_opcode(&self) -> suit_isa::Opcode {
        self.dominant_opcode
    }
}

fn scale_perf(mut p: OperatingPoint, factor: f64) -> OperatingPoint {
    p.perf *= factor;
    p
}

/// Fraction of the Table 2 package-power reduction attributed to the DVFS
/// domain the trace simulator models. The Table 2 measurements are
/// whole-package deltas including TDP-feedback effects accumulated over a
/// full benchmark run; the per-domain instantaneous reduction the paper's
/// simulator charges on the efficient curve is smaller (its per-benchmark
/// results — e.g. 557.xz +16.9 % efficiency at 97.1 % residency — imply
/// ≈ −12 % rather than the −16 % package figure at −97 mV).
const TRACE_POWER_ATTENUATION: f64 = 0.8;

/// Builds the engine's operating-point table for a CPU, level and
/// strategy.
///
/// * `E` — perf from the Table 2 score response, power attenuated per
///   [`TRACE_POWER_ATTENUATION`].
/// * `C_V` — the 1.0/1.0 baseline by definition.
/// * `C_f` — performance from the conservative curve's frequency at the
///   efficient voltage. Its *power* depends on the strategy: under 𝑓𝑉 the
///   `C_f` point only exists while the requested voltage raise is ramping
///   (Fig. 6), so the average supply sits between efficient and nominal —
///   we charge the midpoint; under the pure-frequency strategy `C_f` is a
///   steady state at the low voltage and gets the physical (low) power of
///   the package model.
pub(crate) fn point_table(
    cpu: &CpuModel,
    level: UndervoltLevel,
    strategy: OperatingStrategy,
    pen: f64,
) -> PointTable {
    let mut e = cpu.point_e(level);
    e.power = 1.0 + TRACE_POWER_ATTENUATION * (e.power - 1.0);
    let cv = cpu.point_cv();
    let mut cf = cpu.point_cf(level);
    match strategy {
        OperatingStrategy::FreqVolt => {
            cf.power = 0.5 * (e.power + cv.power);
        }
        // Steady C_f under the pure-frequency strategy: on a CPU whose
        // cores share one voltage rail (ℬ), the rail stays sized for the
        // other cores and the package reduction is diluted. CPUs with
        // per-core voltage domains (𝒞) keep the full physical reduction.
        OperatingStrategy::Frequency if cpu.domains == suit_hw::DomainLayout::PerCoreFreq => {
            cf.power = 1.0 + 0.55 * (cf.power - 1.0);
        }
        _ => {}
    }
    PointTable {
        e: scale_perf(e, pen),
        cf: scale_perf(cf, pen),
        cv: scale_perf(cv, pen),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_trace::profile;

    fn xeon_cfg() -> SimConfig {
        SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(2_000_000_000)
    }

    #[test]
    fn quiet_workload_lives_on_the_efficient_curve() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("557.xz").unwrap();
        let r = simulate(&cpu, p, &xeon_cfg());
        // §6.4: 557.xz is on the efficient curve 97.1 % of the time.
        assert!(
            (r.residency() - 0.971).abs() < 0.03,
            "residency {:.3}",
            r.residency()
        );
        assert!(r.efficiency() > 0.10, "eff {:.3}", r.efficiency());
    }

    #[test]
    fn bursty_workload_parks_on_conservative() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("520.omnetpp").unwrap();
        let r = simulate(&cpu, p, &xeon_cfg());
        // §6.4: 520.omnetpp is on the efficient curve only 3.2 % of the
        // time, with negligible performance impact.
        assert!(r.residency() < 0.10, "residency {:.3}", r.residency());
        assert!(r.perf() > -0.02, "perf {:.3}", r.perf());
        assert!(r.thrash_hits > 0, "thrashing prevention must engage");
    }

    #[test]
    fn gcc_matches_paper_residency() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("502.gcc").unwrap();
        let r = simulate(&cpu, p, &xeon_cfg());
        // §6.4: 76.6 % residency, −2.89 % performance, +9.67 % efficiency.
        assert!(
            (r.residency() - 0.766).abs() < 0.06,
            "residency {:.3}",
            r.residency()
        );
        assert!((-0.06..0.0).contains(&r.perf()), "perf {:.3}", r.perf());
        assert!(r.efficiency() > 0.04, "eff {:.3}", r.efficiency());
    }

    #[test]
    fn deterministic_across_runs() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("502.gcc").unwrap();
        let cfg = xeon_cfg().with_max_insts(200_000_000);
        let a = simulate(&cpu, p, &cfg);
        let b = simulate(&cpu, p, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn four_cores_sharing_a_domain_lose_efficiency() {
        // §6.4: 𝒜₁ +12 % average efficiency shrinks to +5.8 % on 𝒜₄.
        let cpu = CpuModel::i9_9900k();
        let p = profile::by_name("502.gcc").unwrap();
        let cfg1 = xeon_cfg().with_max_insts(500_000_000);
        let cfg4 = cfg1.clone().with_cores(4);
        let r1 = simulate(&cpu, p, &cfg1);
        let r4 = simulate(&cpu, p, &cfg4);
        assert!(
            r4.residency() < r1.residency(),
            "shared domain must reduce residency: {:.3} vs {:.3}",
            r4.residency(),
            r1.residency()
        );
        assert!(r4.efficiency() < r1.efficiency());
    }

    #[test]
    fn deeper_undervolt_roughly_doubles_efficiency() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("557.xz").unwrap();
        let r70 = simulate(
            &cpu,
            p,
            &SimConfig::fv_intel(UndervoltLevel::Mv70).with_max_insts(1_000_000_000),
        );
        let r97 = simulate(
            &cpu,
            p,
            &SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(1_000_000_000),
        );
        let ratio = r97.efficiency() / r70.efficiency();
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn timer_and_exception_counts_are_consistent() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("502.gcc").unwrap();
        let r = simulate(&cpu, p, &xeon_cfg().with_max_insts(500_000_000));
        assert!(r.exceptions > 0);
        // Every conservative episode ends with exactly one timer fire
        // (modulo the final, possibly unfinished episode).
        assert!(r.timer_fires <= r.exceptions);
        assert!(r.timer_fires + 1 >= r.exceptions / 2, "episodes must close");
        // Each burst is one episode: exceptions ≈ bursts ≪ events.
        assert!(r.events > r.exceptions);
    }

    #[test]
    fn amd_frequency_strategy_pays_long_switches() {
        let cpu = CpuModel::ryzen_7700x();
        let p = profile::by_name("502.gcc").unwrap();
        let cfg = SimConfig::f_amd(UndervoltLevel::Mv97).with_max_insts(2_000_000_000);
        let r = simulate(&cpu, p, &cfg);
        // Table 6 ℬ∞ f: ~−10 % performance at −97 mV (SPEC gmean); gcc is
        // mid-pack. The 668 µs switch delay must visibly hurt.
        assert!(r.perf() < -0.02, "perf {:.3}", r.perf());
    }

    #[test]
    fn adaptive_mode_tracks_the_better_strategy() {
        // §6.8: the dynamic chooser should approximate fV on burst-heavy
        // Nginx and approximate (cheap) emulation on sparse 557.xz.
        let cpu = CpuModel::xeon_4208();

        let nginx = profile::by_name("Nginx").unwrap();
        let fv = simulate(&cpu, nginx, &xeon_cfg());
        let ad = simulate(
            &cpu,
            nginx,
            &SimConfig::adaptive_intel(UndervoltLevel::Mv97).with_max_insts(2_000_000_000),
        );
        assert!(
            ad.perf() > fv.perf() - 0.02,
            "adaptive {:+.3} must not collapse vs fV {:+.3}",
            ad.perf(),
            fv.perf()
        );
        assert!(
            ad.perf() > -0.10,
            "adaptive must avoid the -98% emulation cliff"
        );

        let xz = profile::by_name("557.xz").unwrap();
        let ad_xz = simulate(
            &cpu,
            xz,
            &SimConfig::adaptive_intel(UndervoltLevel::Mv97).with_max_insts(2_000_000_000),
        );
        let fv_xz = simulate(&cpu, xz, &xeon_cfg());
        // Sparse workload: adaptive emulates the rare instructions and
        // stays on E even more than fV does.
        assert!(ad_xz.residency() >= fv_xz.residency() - 0.01);
        assert!(ad_xz.efficiency() >= fv_xz.efficiency() - 0.01);
    }

    #[test]
    fn adaptive_mode_emulates_singleton_instructions() {
        // A workload whose faultable instructions come alone (§4.1: "for
        // single instructions, emulation is faster than switching"): the
        // chooser must handle every one in software and never arm the
        // curve-switch machinery.
        let cpu = CpuModel::xeon_4208();
        let mut p = profile::by_name("557.xz").unwrap().clone();
        p.events_per_burst = 1.0;
        p.within_gap_insts = 1.0;
        let cfg = SimConfig::adaptive_intel(UndervoltLevel::Mv97).with_max_insts(2_000_000_000);
        let r = simulate(&cpu, &p, &cfg);
        assert!(r.exceptions > 0);
        assert_eq!(r.timer_fires, 0, "{r:?}");
        assert!(r.residency() > 0.999, "never leaves the efficient curve");
        // And it beats plain fV on the same workload.
        let fv = simulate(&cpu, &p, &xeon_cfg().with_max_insts(2_000_000_000));
        assert!(
            r.perf() > fv.perf(),
            "{:+.4} vs {:+.4}",
            r.perf(),
            fv.perf()
        );
    }

    #[test]
    fn mixed_domain_noisy_neighbor() {
        // A quiet workload (557.xz) sharing the i9's single DVFS domain
        // with thrash-prone 520.omnetpp: the neighbour parks the *domain*
        // on the conservative curve, and xz loses its efficient-curve
        // residency through no fault of its own.
        let cpu = CpuModel::i9_9900k();
        let xz = profile::by_name("557.xz").unwrap();
        let omnetpp = profile::by_name("520.omnetpp").unwrap();
        let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(1_000_000_000);

        let solo = simulate(&cpu, xz, &cfg);
        let mixed = simulate_mixed(&cpu, &[xz, omnetpp], &cfg);

        assert_eq!(mixed.per_core.len(), 2);
        assert_eq!(mixed.per_core[0].workload, "557.xz");
        assert!(
            mixed.domain.residency() < solo.residency() - 0.3,
            "neighbour must drag residency: {:.2} vs {:.2}",
            mixed.domain.residency(),
            solo.residency()
        );
        assert!(mixed.domain.workload.starts_with("mix("));
        // xz still finishes (perf near baseline — the conservative curve
        // is the no-SUIT operating point).
        let xz_core = &mixed.per_core[0];
        assert!(xz_core.perf() > -0.05, "{:+.3}", xz_core.perf());
    }

    #[test]
    fn mixed_with_identical_profiles_matches_homogeneous() {
        let cpu = CpuModel::i9_9900k();
        let gcc = profile::by_name("502.gcc").unwrap();
        let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97)
            .with_max_insts(500_000_000)
            .with_cores(2);
        let homo = simulate(&cpu, gcc, &cfg);
        let mixed = simulate_mixed(&cpu, &[gcc, gcc], &cfg);
        assert_eq!(homo, mixed.domain);
        for c in &mixed.per_core {
            assert!(c.finish <= mixed.domain.duration);
            assert!(c.events > 0);
        }
    }

    #[test]
    fn telemetry_is_observational_and_exact() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("502.gcc").unwrap();
        let cfg = xeon_cfg().with_max_insts(200_000_000);
        let off = simulate(&cpu, p, &cfg);
        let tele = Telemetry::recording();
        let on = simulate_telemetry(&cpu, p, &cfg, &tele);
        assert_eq!(off, on, "telemetry must not perturb simulation results");

        let snap = tele.snapshot();
        // Counters re-derive the engine aggregates exactly.
        assert_eq!(snap.counter(Counter::DoTraps), on.exceptions);
        assert_eq!(snap.counter(Counter::DeadlineFires), on.timer_fires);
        assert_eq!(snap.counter(Counter::ThrashLockouts), on.thrash_hits);
        assert_eq!(snap.counter(Counter::TimeEfficientPs), on.time_e.as_picos());
        assert_eq!(
            snap.counter(Counter::TimeConservativeFreqPs),
            on.time_cf.as_picos()
        );
        assert_eq!(
            snap.counter(Counter::TimeConservativeVoltPs),
            on.time_cv.as_picos()
        );
        assert_eq!(snap.counter(Counter::TimeStallPs), on.time_stall.as_picos());
        assert!(snap.counter(Counter::CurveSwitches) > 0);
        assert!(snap.hist(Hist::StallPs).count() > 0);

        // The exported trace validates and carries the acceptance events.
        let json = snap.to_perfetto_json();
        let stats = suit_telemetry::validate_perfetto(&json).expect("trace must validate");
        assert!(stats.count("curve_switch") > 0);
        assert!(stats.count("do_trap") > 0);
        assert!(stats.count("stall") > 0);
    }

    #[test]
    fn run_stream_replays_recorded_bursts_deterministically() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("502.gcc").unwrap();
        let bursts: Vec<Burst> = suit_trace::TraceGen::new(p, 11).collect();
        let meta = TraceMeta {
            name: "recorded".into(),
            ipc: p.ipc,
            total_insts: p.total_insts,
        };
        let cfg = xeon_cfg().with_max_insts(200_000_000);
        // Identical burst sequences through different iterator types must
        // produce identical results — the storage layer is transparent.
        let a = run_stream(&cpu, &meta, bursts.iter().copied(), &cfg);
        let b = run_stream(&cpu, &meta, bursts.clone(), &cfg);
        assert_eq!(a, b);
        assert_eq!(a.workload, "recorded");
        assert!(a.events > 0);
        assert!(a.exceptions > 0);
    }

    #[test]
    fn run_stream_with_an_empty_source_idles_to_the_cap() {
        let cpu = CpuModel::xeon_4208();
        let meta = TraceMeta {
            name: "silence".into(),
            ipc: 1.0,
            total_insts: 1_000_000,
        };
        let r = run_stream(&cpu, &meta, Vec::new(), &xeon_cfg());
        assert_eq!(r.events, 0);
        assert_eq!(r.exceptions, 0);
        // No faultable instructions ⇒ the whole run stays on E.
        assert!(r.residency() > 0.999);
    }

    #[test]
    #[should_panic(expected = "emulation is closed-form")]
    fn engine_rejects_emulation_strategy() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("557.xz").unwrap();
        let mut cfg = xeon_cfg();
        cfg.strategy = OperatingStrategy::Emulation;
        let _ = simulate(&cpu, p, &cfg);
    }
}
