//! The Table 6 / Fig. 16 experiment harness.
//!
//! Runs every configuration row of the paper's Table 6 — CPU, utilised
//! cores, operating strategy — over all 25 workloads at both undervolt
//! levels, and reduces them to the paper's columns: SPEC geometric mean,
//! SPEC median, 525.x264, SPECnoSIMD, Nginx, VLC, each as power /
//! performance / efficiency deltas.

use suit_core::strategy::StrategyParams;
use suit_core::OperatingStrategy;
use suit_exec::Threads;
use suit_hw::{CpuModel, UndervoltLevel};
use suit_trace::{profile, WorkloadProfile};

use crate::analytic::{simulate_emulation, simulate_no_simd};
use crate::engine::{simulate, SimConfig};
use crate::result::{gmean_delta, median, RunResult};

/// One configuration row of Table 6 (e.g. "𝒜₁ 𝑓𝑉" or "ℬ∞ 𝑒").
#[derive(Debug, Clone)]
pub struct RowSpec {
    /// Row label as the paper prints it.
    pub label: &'static str,
    /// The CPU model.
    pub cpu: CpuModel,
    /// Cores sharing the DVFS domain (1 = per-core domain or single-core).
    pub cores: usize,
    /// The operating strategy.
    pub strategy: OperatingStrategy,
}

/// All six configuration rows of Table 6.
pub fn table6_rows() -> Vec<RowSpec> {
    vec![
        RowSpec {
            label: "A1 fV",
            cpu: CpuModel::i9_9900k(),
            cores: 1,
            strategy: OperatingStrategy::FreqVolt,
        },
        RowSpec {
            label: "A4 fV",
            cpu: CpuModel::i9_9900k(),
            cores: 4,
            strategy: OperatingStrategy::FreqVolt,
        },
        RowSpec {
            label: "Ainf e",
            cpu: CpuModel::i9_9900k(),
            cores: 1,
            strategy: OperatingStrategy::Emulation,
        },
        RowSpec {
            label: "Binf f",
            cpu: CpuModel::ryzen_7700x(),
            cores: 1,
            strategy: OperatingStrategy::Frequency,
        },
        RowSpec {
            label: "Binf e",
            cpu: CpuModel::ryzen_7700x(),
            cores: 1,
            strategy: OperatingStrategy::Emulation,
        },
        RowSpec {
            label: "Cinf fV",
            cpu: CpuModel::xeon_4208(),
            cores: 1,
            strategy: OperatingStrategy::FreqVolt,
        },
    ]
}

/// The Table 7 parameters for a CPU (Intel rows vs. the AMD row).
pub fn params_for(cpu: &CpuModel) -> StrategyParams {
    match cpu.kind {
        suit_hw::CpuKind::AmdRyzen7700X => StrategyParams::amd(),
        _ => StrategyParams::intel(),
    }
}

/// Per-workload results plus the derived Table 6 columns for one
/// (row, level) cell block.
#[derive(Debug, Clone, PartialEq)]
pub struct RowResult {
    /// The row's label.
    pub label: &'static str,
    /// Undervolt level.
    pub level: UndervoltLevel,
    /// Per-workload results (SPEC first, then Nginx, VLC).
    pub per_workload: Vec<RunResult>,
    /// SPECnoSIMD per-workload results.
    pub no_simd: Vec<RunResult>,
}

/// One (power, perf, efficiency) delta triple — a Table 6 cell column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deltas {
    /// Power change, fractional.
    pub power: f64,
    /// Performance change, fractional.
    pub perf: f64,
    /// Efficiency change, fractional.
    pub eff: f64,
}

impl Deltas {
    fn of(r: &RunResult) -> Deltas {
        Deltas {
            power: r.power(),
            perf: r.perf(),
            eff: r.efficiency(),
        }
    }
}

impl RowResult {
    fn spec(&self) -> impl Iterator<Item = &RunResult> {
        self.per_workload
            .iter()
            .filter(|r| r.workload != "Nginx" && r.workload != "VLC")
    }

    fn find(&self, name: &str) -> &RunResult {
        self.per_workload
            .iter()
            .find(|r| r.workload == name)
            .unwrap_or_else(|| panic!("workload {name} missing"))
    }

    /// SPEC geometric-mean column.
    pub fn spec_gmean(&self) -> Deltas {
        Deltas {
            power: gmean_delta(self.spec().map(RunResult::power)),
            perf: gmean_delta(self.spec().map(RunResult::perf)),
            eff: gmean_delta(self.spec().map(RunResult::efficiency)),
        }
    }

    /// SPEC median column.
    pub fn spec_median(&self) -> Deltas {
        Deltas {
            power: median(self.spec().map(RunResult::power)),
            perf: median(self.spec().map(RunResult::perf)),
            eff: median(self.spec().map(RunResult::efficiency)),
        }
    }

    /// The 525.x264 column (most affected by the IMUL latency increase).
    pub fn x264(&self) -> Deltas {
        Deltas::of(self.find("525.x264"))
    }

    /// The SPECnoSIMD column: every benchmark compiled without SIMD.
    pub fn spec_no_simd(&self) -> Deltas {
        Deltas {
            power: gmean_delta(self.no_simd.iter().map(RunResult::power)),
            perf: gmean_delta(self.no_simd.iter().map(RunResult::perf)),
            eff: gmean_delta(self.no_simd.iter().map(RunResult::efficiency)),
        }
    }

    /// The Nginx column.
    pub fn nginx(&self) -> Deltas {
        Deltas::of(self.find("Nginx"))
    }

    /// The VLC column.
    pub fn vlc(&self) -> Deltas {
        Deltas::of(self.find("VLC"))
    }

    /// Mean efficient-curve residency over SPEC (§6.4's 72.7 %).
    pub fn spec_residency_mean(&self) -> f64 {
        let v: Vec<f64> = self.spec().map(RunResult::residency).collect();
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Runs one Table 6 row at one undervolt level over all 25 workloads,
/// fanned out over all available cores.
///
/// `max_insts` caps the per-workload virtual trace; `None` runs the full
/// 2 × 10¹⁰ instructions (use caps in debug builds).
pub fn run_row(spec: &RowSpec, level: UndervoltLevel, max_insts: Option<u64>) -> RowResult {
    run_row_with_params(spec, level, params_for(&spec.cpu), max_insts)
}

/// [`run_row`] with an explicit worker policy.
pub fn run_row_threads(
    spec: &RowSpec,
    level: UndervoltLevel,
    max_insts: Option<u64>,
    threads: Threads,
) -> RowResult {
    run_row_with_params_threads(spec, level, params_for(&spec.cpu), max_insts, threads)
}

/// Like [`run_row`] with explicit strategy parameters (used by the Table 7
/// parameter sweep and the ablations).
pub fn run_row_with_params(
    spec: &RowSpec,
    level: UndervoltLevel,
    params: StrategyParams,
    max_insts: Option<u64>,
) -> RowResult {
    run_row_with_params_threads(spec, level, params, max_insts, Threads::Auto)
}

/// [`run_row_with_params`] with an explicit worker policy: the 25
/// workloads plus the SPECnoSIMD set form one indexed job set on the
/// [`suit_exec`] executor. Each job is a pure function of its index, so
/// the row is byte-identical at every thread count; stealing keeps
/// workers busy even though per-workload costs vary by an order of
/// magnitude (520.omnetpp switches curves far more often than 557.xz).
pub fn run_row_with_params_threads(
    spec: &RowSpec,
    level: UndervoltLevel,
    params: StrategyParams,
    max_insts: Option<u64>,
    threads: Threads,
) -> RowResult {
    let all = profile::all();
    let spec_suite: Vec<&WorkloadProfile> = profile::spec_suite().collect();
    let mut results = suit_exec::run(all.len() + spec_suite.len(), threads, |i| {
        if i < all.len() {
            run_workload(spec, &all[i], level, params, max_insts)
        } else {
            simulate_no_simd(&spec.cpu, spec_suite[i - all.len()], level, max_insts)
        }
    });
    let no_simd = results.split_off(all.len());
    RowResult {
        label: spec.label,
        level,
        per_workload: results,
        no_simd,
    }
}

/// Runs the full Table 6 sweep — every (row, level) cell, level-major in
/// [`UndervoltLevel::ALL`] order then [`table6_rows`] order — as one
/// indexed job set on the [`suit_exec`] executor. Cells run their
/// workloads serially (the fan-out is across cells), so the result is a
/// pure function of `max_insts` and byte-identical at every thread
/// count; `tests/determinism.rs` pins that.
pub fn run_table6(threads: Threads, max_insts: Option<u64>) -> Vec<RowResult> {
    let rows = table6_rows();
    let cells: Vec<(&RowSpec, UndervoltLevel)> = UndervoltLevel::ALL
        .iter()
        .flat_map(|&level| rows.iter().map(move |spec| (spec, level)))
        .collect();
    suit_exec::run(cells.len(), threads, |i| {
        let (spec, level) = cells[i];
        run_row_with_params_threads(
            spec,
            level,
            params_for(&spec.cpu),
            max_insts,
            Threads::Fixed(1),
        )
    })
}

fn run_workload(
    spec: &RowSpec,
    p: &WorkloadProfile,
    level: UndervoltLevel,
    params: StrategyParams,
    max_insts: Option<u64>,
) -> RunResult {
    match spec.strategy {
        OperatingStrategy::Emulation => simulate_emulation(&spec.cpu, p, level, 0x5017, max_insts),
        strategy => {
            let cfg = SimConfig {
                strategy,
                params,
                level,
                cores: spec.cores,
                seed: 0x5017,
                max_insts,
                record_timeline: false,
                adaptive: None,
            };
            simulate(&spec.cpu, p, &cfg)
        }
    }
}

/// Table 8: for each configuration, in how many of the 23 SPEC benchmarks
/// compiling without SIMD beats running SUIT with traps.
pub fn table8_counts(row: &RowResult) -> (usize, usize) {
    let mut no_simd_wins = 0;
    let mut suit_wins = 0;
    for (suit, nosimd) in row
        .per_workload
        .iter()
        .filter(|r| r.workload != "Nginx" && r.workload != "VLC")
        .zip(&row.no_simd)
    {
        assert_eq!(suit.workload, nosimd.workload, "row ordering must match");
        if nosimd.perf() > suit.perf() {
            no_simd_wins += 1;
        } else {
            suit_wins += 1;
        }
    }
    (no_simd_wins, suit_wins)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: Option<u64> = Some(400_000_000);

    #[test]
    fn rows_cover_the_paper_table() {
        let rows = table6_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].label, "A1 fV");
        assert_eq!(rows[1].cores, 4);
        assert!(matches!(rows[2].strategy, OperatingStrategy::Emulation));
    }

    #[test]
    fn parallel_row_matches_serial() {
        // The fan-out across the 25 + 23 workload jobs is index-ordered,
        // so a parallel row must be byte-identical to the serial one.
        let spec = &table6_rows()[5];
        let serial = run_row_threads(spec, UndervoltLevel::Mv97, CAP, Threads::Fixed(1));
        let parallel = run_row_threads(spec, UndervoltLevel::Mv97, CAP, Threads::Fixed(4));
        assert_eq!(serial, parallel);
        assert_eq!(serial.per_workload.len(), 25);
        assert_eq!(serial.no_simd.len(), 23);
    }

    #[test]
    fn table6_sweep_covers_every_cell_level_major() {
        let cells = run_table6(Threads::Auto, Some(20_000_000));
        assert_eq!(cells.len(), 12);
        let rows = table6_rows();
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.label, rows[i % rows.len()].label);
            assert_eq!(cell.level, UndervoltLevel::ALL[i / rows.len()]);
        }
    }

    #[test]
    fn xeon_fv_row_shows_the_headline_shape() {
        // Table 6 𝒞∞ 𝑓𝑉 at −97 mV: power ≈ −10 %, perf ≈ 0, eff ≈ +11 %.
        let spec = &table6_rows()[5];
        let row = run_row(spec, UndervoltLevel::Mv97, CAP);
        let g = row.spec_gmean();
        assert!((-0.14..=-0.05).contains(&g.power), "power {:.3}", g.power);
        assert!((-0.03..=0.03).contains(&g.perf), "perf {:.3}", g.perf);
        assert!((0.06..=0.18).contains(&g.eff), "eff {:.3}", g.eff);
        // §6.4: efficient-curve residency 72.7 % on average.
        let res = row.spec_residency_mean();
        assert!((0.60..=0.85).contains(&res), "residency {res:.3}");
    }

    #[test]
    fn emulation_row_has_low_gmean_but_ok_median() {
        // Table 6 𝒜∞ 𝑒 at −97 mV: perf gmean −42 %, median −12 %; a few
        // catastrophic benchmarks dominate the geometric mean (§6.6).
        let spec = &table6_rows()[2];
        let row = run_row(spec, UndervoltLevel::Mv97, CAP);
        let g = row.spec_gmean();
        let m = row.spec_median();
        assert!(g.perf < -0.25, "gmean perf {:.3}", g.perf);
        assert!(
            m.perf > g.perf + 0.10,
            "median {:.3} vs gmean {:.3}",
            m.perf,
            g.perf
        );
        assert!(row.nginx().perf < -0.90, "nginx {:.3}", row.nginx().perf);
    }

    #[test]
    fn table8_no_simd_wins_most_on_amd() {
        // Table 8: on ℬ (long switch delay) no-SIMD wins 21+/23.
        let rows = table6_rows();
        let b = run_row(&rows[3], UndervoltLevel::Mv97, CAP);
        let (no_simd_wins, _) = table8_counts(&b);
        assert!(no_simd_wins >= 15, "no-SIMD wins {no_simd_wins}/23");
        // On 𝒞 (fast per-core switching) SUIT holds a meaningful share.
        let c = run_row(&rows[5], UndervoltLevel::Mv97, CAP);
        let (nw_c, sw_c) = table8_counts(&c);
        assert!(sw_c >= 4, "SUIT wins only {sw_c}/23 on C");
        assert!(nw_c + sw_c == 23);
    }
}
