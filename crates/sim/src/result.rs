//! Simulation results and derived metrics.

use suit_isa::SimDuration;

/// The outcome of simulating one workload under one configuration.
///
/// All relative metrics are against the *baseline*: the same CPU without
/// SUIT, running the whole workload on the conservative curve at nominal
/// voltage (operating point `C_V`, relative performance and power 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Simulated wall-clock duration with SUIT.
    pub duration: SimDuration,
    /// Baseline duration (conservative curve, no SUIT, 3-cycle IMUL).
    pub baseline_duration: SimDuration,
    /// Integrated relative package power (relative-power × seconds); the
    /// baseline integrates 1.0 over `baseline_duration`.
    pub energy_rel: f64,
    /// Time spent on the efficient curve.
    pub time_e: SimDuration,
    /// Time spent at the conservative-by-frequency point.
    pub time_cf: SimDuration,
    /// Time spent at the conservative-by-voltage point.
    pub time_cv: SimDuration,
    /// Time lost to stalls (curve-switch waits, exception entries).
    pub time_stall: SimDuration,
    /// Faultable instructions executed (or emulated).
    pub events: u64,
    /// `#DO` exceptions taken.
    pub exceptions: u64,
    /// Deadline-timer interrupts.
    pub timer_fires: u64,
    /// Exceptions handled while thrashing prevention was active.
    pub thrash_hits: u64,
}

impl RunResult {
    /// Performance change vs. baseline (+0.01 = 1 % faster; the paper's
    /// "Perf." rows of Table 6).
    pub fn perf(&self) -> f64 {
        self.baseline_duration.as_secs_f64() / self.duration.as_secs_f64() - 1.0
    }

    /// Mean package-power change vs. baseline (the "Pwr" rows).
    pub fn power(&self) -> f64 {
        self.energy_rel / self.duration.as_secs_f64() - 1.0
    }

    /// Efficiency change (the "Eff." rows): `(1 + perf) / (1 + power) − 1`,
    /// i.e. one over the change in duration times the change in power
    /// (§5.4).
    pub fn efficiency(&self) -> f64 {
        (1.0 + self.perf()) / (1.0 + self.power()) - 1.0
    }

    /// Fraction of the run spent on the efficient DVFS curve (§6.4's
    /// residency metric; 72.7 % on SPEC average in the paper).
    pub fn residency(&self) -> f64 {
        self.time_e.as_secs_f64() / self.duration.as_secs_f64()
    }

    /// Total energy change vs. baseline: `(1 + power) · (1 + Δduration) − 1`
    /// — what the electricity bill sees.
    pub fn energy(&self) -> f64 {
        self.energy_rel / self.baseline_duration.as_secs_f64() - 1.0
    }

    /// Energy-delay-product change vs. baseline (the DVFS literature's
    /// fused metric; negative is better).
    pub fn edp(&self) -> f64 {
        let d = self.duration.as_secs_f64() / self.baseline_duration.as_secs_f64();
        (1.0 + self.energy()) * d - 1.0
    }
}

/// Aggregates over a set of per-workload results (the SPECgmean /
/// SPECmedian columns of Table 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Geometric-mean performance change.
    pub perf_gmean: f64,
    /// Median performance change.
    pub perf_median: f64,
    /// Geometric-mean power change.
    pub power_gmean: f64,
    /// Median power change.
    pub power_median: f64,
    /// Geometric-mean efficiency change.
    pub eff_gmean: f64,
    /// Median efficiency change.
    pub eff_median: f64,
    /// Mean efficient-curve residency.
    pub residency_mean: f64,
}

impl Aggregate {
    /// Computes the Table 6 aggregates over `results`.
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty.
    pub fn over(results: &[RunResult]) -> Aggregate {
        assert!(!results.is_empty(), "cannot aggregate zero results");
        Aggregate {
            perf_gmean: gmean_delta(results.iter().map(RunResult::perf)),
            perf_median: median(results.iter().map(RunResult::perf)),
            power_gmean: gmean_delta(results.iter().map(RunResult::power)),
            power_median: median(results.iter().map(RunResult::power)),
            eff_gmean: gmean_delta(results.iter().map(RunResult::efficiency)),
            eff_median: median(results.iter().map(RunResult::efficiency)),
            residency_mean: results.iter().map(RunResult::residency).sum::<f64>()
                / results.len() as f64,
        }
    }
}

/// Geometric mean of `(1 + δ)` factors, returned as a delta.
pub fn gmean_delta<I: Iterator<Item = f64>>(deltas: I) -> f64 {
    let mut sum_ln = 0.0;
    let mut n = 0usize;
    for d in deltas {
        assert!(d > -1.0, "delta {d} implies non-positive factor");
        sum_ln += (1.0 + d).ln();
        n += 1;
    }
    assert!(n > 0);
    (sum_ln / n as f64).exp() - 1.0
}

/// Median of a sequence of deltas.
pub fn median<I: Iterator<Item = f64>>(deltas: I) -> f64 {
    let mut v: Vec<f64> = deltas.collect();
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(perf: f64, power: f64, residency: f64) -> RunResult {
        let base = SimDuration::from_millis(1000);
        let duration = SimDuration::from_secs_f64(base.as_secs_f64() / (1.0 + perf));
        RunResult {
            workload: "test".into(),
            duration,
            baseline_duration: base,
            energy_rel: (1.0 + power) * duration.as_secs_f64(),
            time_e: SimDuration::from_secs_f64(duration.as_secs_f64() * residency),
            time_cf: SimDuration::ZERO,
            time_cv: SimDuration::ZERO,
            time_stall: SimDuration::ZERO,
            events: 0,
            exceptions: 0,
            timer_fires: 0,
            thrash_hits: 0,
        }
    }

    #[test]
    fn metric_roundtrip() {
        let r = result(0.02, -0.10, 0.8);
        assert!((r.perf() - 0.02).abs() < 1e-9);
        assert!((r.power() - (-0.10)).abs() < 1e-9);
        assert!((r.efficiency() - (1.02 / 0.90 - 1.0)).abs() < 1e-9);
        assert!((r.residency() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn energy_and_edp_derive_consistently() {
        // +2 % perf, −10 % power ⇒ energy = 0.90 / 1.02 − 1 ≈ −11.8 %,
        // EDP = (1 + energy) / 1.02 − 1 ≈ −13.5 %.
        let r = result(0.02, -0.10, 0.8);
        let expect_energy = 0.90 / 1.02 - 1.0;
        assert!((r.energy() - expect_energy).abs() < 1e-9, "{}", r.energy());
        let expect_edp = (1.0 + expect_energy) / 1.02 - 1.0;
        assert!((r.edp() - expect_edp).abs() < 1e-9, "{}", r.edp());
        // EDP rewards the perf gain beyond raw energy.
        assert!(r.edp() < r.energy());
    }

    #[test]
    fn aggregate_median_and_gmean() {
        let rs = vec![
            result(0.10, -0.1, 1.0),
            result(-0.50, -0.1, 0.0),
            result(0.0, -0.1, 0.5),
        ];
        let a = Aggregate::over(&rs);
        assert!((a.perf_median - 0.0).abs() < 1e-12);
        // gmean = (1.1 · 0.5 · 1.0)^(1/3) − 1.
        let expect = (1.1f64 * 0.5 * 1.0).powf(1.0 / 3.0) - 1.0;
        assert!((a.perf_gmean - expect).abs() < 1e-12);
        assert!((a.residency_mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn median_even_count_averages() {
        assert!((median([0.1, 0.3].into_iter()) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero results")]
    fn aggregate_rejects_empty() {
        let _ = Aggregate::over(&[]);
    }

    #[test]
    fn gmean_is_dominated_by_large_losses() {
        // The §6.6 phenomenon: a few −95 % benchmarks drag the geometric
        // mean far below the median.
        let mut rs = vec![result(-0.95, 0.0, 0.0), result(-0.95, 0.0, 0.0)];
        for _ in 0..8 {
            rs.push(result(0.02, 0.0, 1.0));
        }
        let a = Aggregate::over(&rs);
        assert!(a.perf_median > -0.05);
        assert!(a.perf_gmean < -0.40, "gmean {}", a.perf_gmean);
    }
}
