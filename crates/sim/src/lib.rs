//! # suit-sim
//!
//! The event-based, trace-driven system simulator of the SUIT paper's
//! Fig. 15: a CPU model (from `suit-hw`) executing an instruction stream
//! (from `suit-trace`) under an operating strategy (from `suit-core`).
//!
//! The simulator advances time between *events* — faultable-instruction
//! executions, deadline-timer expiries, and asynchronous p-state arrivals —
//! and integrates instruction progress and relative package power over the
//! operating points `E`, `C_f` and `C_V` (Fig. 4), charging the measured
//! §5.2/§5.3 delays at every transition. Dense bursts are handled in
//! per-event steps but generated lazily, so multi-second virtual traces
//! with millions of faultable instructions simulate in milliseconds.
//!
//! * [`engine`] — the discrete-event core for the curve-switching
//!   strategies (𝑓, 𝑉, 𝑓𝑉), including multi-core runs sharing one DVFS
//!   domain (CPU 𝒜).
//! * [`analytic`] — closed-form evaluation of the *emulation* and
//!   *no-SIMD* modes, which never switch curves (§6.2's methodology:
//!   no-SIMD recompile overhead plus one emulation-call delay per disabled
//!   instruction).
//! * [`result`] — run results: performance / power / efficiency deltas and
//!   efficient-curve residency.
//! * [`experiment`] — the Table 6 / Fig. 16 harness: every (CPU, cores,
//!   strategy, offset) × workload combination, with SPEC aggregation.
//! * [`timeline`] — p-state timelines for Figs. 5 and 6.
//! * [`montecarlo`] — distributional re-runs with sampled transition
//!   delays and trace seeds (the error bars around the point estimates).
//! * [`thermal_loop`] — the governor, thermal RC model and simulator
//!   coupled into a closed control loop (the operational form of the
//!   §3.1/§5.7 temperature budgets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod arena;
pub mod engine;
pub mod event;
pub mod experiment;
pub mod fleet;
#[doc(hidden)]
pub mod heap_ref;
#[doc(hidden)]
pub mod legacy;
pub mod montecarlo;
pub mod result;
pub mod thermal_loop;
pub mod timeline;

pub use engine::{simulate, simulate_telemetry, SimConfig};
pub use result::RunResult;
