//! P-state timelines for Figs. 5 and 6.
//!
//! Fig. 5 shows an AES burst and SUIT's reaction: the DVFS curve drops to
//! conservative on the first trapped instruction and returns to efficient
//! one deadline after the burst ends. Fig. 6 shows the 𝑓𝑉 sequence on a
//! long burst: frequency falls immediately (`C_f`), the voltage raise
//! lands ~335 µs later (`C_V`, frequency restored), and expiry returns to
//! `E`. This module converts the engine's [`PointChange`] records into
//! (time, frequency, voltage) series.

use suit_hw::{CpuModel, UndervoltLevel};
use suit_isa::SimTime;

use crate::engine::{Point, PointChange};

/// One sample of a Fig. 6 style series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FvSample {
    /// Time of the change, µs since simulation start.
    pub t_us: f64,
    /// Core frequency after the change, GHz.
    pub freq_ghz: f64,
    /// Core voltage after the change, mV.
    pub voltage_mv: f64,
    /// The operating point.
    pub point: Point,
}

/// Maps an operating point to its (frequency, voltage) on `cpu` at `level`.
pub fn point_fv(cpu: &CpuModel, level: UndervoltLevel, point: Point) -> (f64, f64) {
    let curve = cpu.curve();
    let f0 = cpu.steady.base_freq_ghz;
    let v0 = curve.voltage_at(f0);
    let offset = level.offset_mv();
    match point {
        // Efficient: nominal-or-boosted frequency at undervolted supply.
        Point::E => {
            let r = cpu.steady.response(offset);
            (f0 * (1.0 + r.freq), v0 + offset)
        }
        // Conservative by frequency: efficient voltage, reduced clock.
        Point::Cf => (curve.max_freq_at_voltage(v0 + offset), v0 + offset),
        // Conservative by voltage: the stock operating point.
        Point::Cv => (f0, v0),
    }
}

/// Converts recorded point changes into a Fig. 6 series.
pub fn fv_series(cpu: &CpuModel, level: UndervoltLevel, changes: &[PointChange]) -> Vec<FvSample> {
    changes
        .iter()
        .map(|c| {
            let (freq_ghz, voltage_mv) = point_fv(cpu, level, c.point);
            FvSample {
                t_us: c.at.since(SimTime::ZERO).as_micros_f64(),
                freq_ghz,
                voltage_mv,
                point: c.point,
            }
        })
        .collect()
}

/// Collapses a change list into the per-point dwell fractions, a compact
/// check that a timeline matches the run's state accounting.
pub fn dwell_fractions(changes: &[PointChange], end: SimTime) -> [f64; 3] {
    let mut time = [0.0f64; 3];
    if changes.is_empty() {
        return time;
    }
    // The engine starts at E before the first recorded change.
    let mut last_t = SimTime::ZERO;
    let mut last_p = Point::E;
    for c in changes {
        time[idx(last_p)] += c.at.since(last_t).as_secs_f64();
        last_t = c.at;
        last_p = c.point;
    }
    time[idx(last_p)] += end.saturating_since(last_t).as_secs_f64();
    let total: f64 = time.iter().sum();
    if total > 0.0 {
        for t in &mut time {
            *t /= total;
        }
    }
    time
}

fn idx(p: Point) -> usize {
    match p {
        Point::E => 0,
        Point::Cf => 1,
        Point::Cv => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_with_timeline, SimConfig};

    use suit_trace::profile;

    #[test]
    fn point_fv_ordering() {
        let cpu = CpuModel::xeon_4208();
        let lvl = UndervoltLevel::Mv97;
        let (fe, ve) = point_fv(&cpu, lvl, Point::E);
        let (fcf, vcf) = point_fv(&cpu, lvl, Point::Cf);
        let (fcv, vcv) = point_fv(&cpu, lvl, Point::Cv);
        assert!(fe > fcf, "E clocks above C_f");
        assert!(fcv > fcf, "C_V restores the clock");
        assert_eq!(ve, vcf, "E and C_f share the low voltage");
        assert!(vcv > ve, "C_V raises the voltage by the offset");
        assert!((vcv - ve - 97.0).abs() < 1e-9);
    }

    #[test]
    fn nginx_timeline_shows_fig5_pattern() {
        // E → C_f on the AES burst, C_V if it lasts, E after the deadline.
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("Nginx").unwrap();
        let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(300_000_000);
        let (result, changes) = simulate_with_timeline(&cpu, p, &cfg);
        assert!(!changes.is_empty());
        // Changes alternate away from and back to E.
        let points: Vec<Point> = changes.iter().map(|c| c.point).collect();
        assert!(points.contains(&Point::Cf), "bursts must drop to C_f");
        assert!(points.contains(&Point::E), "deadline must restore E");
        // Nginx bursts (≈380 µs) outlive the 335 µs voltage delay → C_V
        // must appear (the Fig. 6 long-burst sequence).
        assert!(points.contains(&Point::Cv), "long bursts reach C_V");
        // Dwell fractions agree with the engine's accounting to a few
        // percent (stall time is attributed to the pre-change point).
        let frac = dwell_fractions(&changes, SimTime::ZERO + result.duration);
        assert!((frac[0] - result.residency()).abs() < 0.08, "{frac:?}");
    }

    #[test]
    fn fv_series_is_time_ordered() {
        let cpu = CpuModel::xeon_4208();
        let p = profile::by_name("502.gcc").unwrap();
        let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(300_000_000);
        let (_, changes) = simulate_with_timeline(&cpu, p, &cfg);
        let series = fv_series(&cpu, UndervoltLevel::Mv97, &changes);
        for w in series.windows(2) {
            assert!(w[1].t_us >= w[0].t_us);
        }
    }
}
