//! The original (pre-event-heap) engine loop, kept as a reference
//! implementation for the differential equivalence suite
//! (`tests/engine_equivalence.rs`).
//!
//! The production engine ([`crate::arena`]) batches and scans flat
//! arrays; the PR 8 reference ([`crate::heap_ref`]) selects events with
//! a deterministic binary min-heap; this module selects them with the
//! original linear scan over every core plus the timer and pending
//! slots, visiting finished cores too. All three share the *identical*
//! boot, per-quantum advancement, and event-dispatch code from
//! [`crate::engine`], so any divergence is a scheduling bug — which is
//! exactly what the suite exists to catch. Not part of the supported
//! API: the adapters in [`crate::engine`] are the only production entry
//! points.

use suit_hw::CpuModel;
use suit_isa::{SimDuration, SimTime};
use suit_telemetry::Telemetry;
use suit_trace::io::TraceMeta;
use suit_trace::{Burst, WorkloadProfile};

use crate::engine::{
    boot, build_cores, build_stream_core, collect, dispatch_event, CoreArena, CoreStream,
    MixedResult, NextEvent, SimConfig,
};
use crate::result::RunResult;

/// Reference [`crate::engine::simulate`]: the legacy scan loop.
pub fn simulate(cpu: &CpuModel, profile: &WorkloadProfile, cfg: &SimConfig) -> RunResult {
    let profiles: Vec<&WorkloadProfile> = (0..cfg.cores).map(|_| profile).collect();
    let (cores, workload) = build_cores(cpu, &profiles, cfg);
    run_cores_legacy(cpu, cores, workload, cfg, &Telemetry::off())
        .0
        .domain
}

/// Reference [`crate::engine::simulate_mixed`]: the legacy scan loop.
pub fn simulate_mixed(
    cpu: &CpuModel,
    profiles: &[&WorkloadProfile],
    cfg: &SimConfig,
) -> MixedResult {
    let (cores, workload) = build_cores(cpu, profiles, cfg);
    run_cores_legacy(cpu, cores, workload, cfg, &Telemetry::off()).0
}

/// Reference [`crate::engine::run_stream`]: the legacy scan loop.
pub fn run_stream<I>(cpu: &CpuModel, meta: &TraceMeta, bursts: I, cfg: &SimConfig) -> RunResult
where
    I: IntoIterator<Item = Burst>,
{
    let core = build_stream_core(cpu, meta, bursts.into_iter(), cfg);
    run_cores_legacy(cpu, vec![core], meta.name.clone(), cfg, &Telemetry::off())
        .0
        .domain
}

/// The original event loop: per-iteration linear scan for the earliest
/// next event with tie priority pending → timer → lowest core index.
fn run_cores_legacy<I: Iterator<Item = Burst>>(
    cpu: &CpuModel,
    mut cores: Vec<CoreStream<I>>,
    workload: String,
    cfg: &SimConfig,
    tele: &Telemetry,
) -> (MixedResult, Option<Vec<crate::engine::PointChange>>) {
    assert!(!cores.is_empty(), "need at least one core");
    let (mut hw, mut os) = boot(cpu, cfg, tele);
    // The reference loops build a private arena per run (no scratch
    // reuse): storage is shared with production, scheduling is not.
    let mut arena = CoreArena::default();
    arena.reset(&mut cores, tele);

    let mut guard: u64 = 0;

    loop {
        guard += 1;
        assert!(guard < 2_000_000_000, "simulation failed to converge");

        if (0..cores.len()).all(|i| arena.finished(i)) {
            break;
        }

        let perf = hw.perf();

        // Find the earliest next event. Priority on ties:
        // pending arrival, then timer, then core events.
        let mut t_next = SimTime::from_picos(u64::MAX);
        let mut kind = NextEvent::Idle;
        for i in 0..cores.len() {
            if arena.finished(i) {
                continue;
            }
            let t = hw.now + SimDuration::from_secs_f64(arena.rem_next(i) / (arena.rate[i] * perf));
            if t < t_next {
                t_next = t;
                kind = NextEvent::Core(i);
            }
        }
        if let Some(t) = hw.timer.expires_at() {
            if t <= t_next {
                t_next = t;
                kind = NextEvent::Timer;
            }
        }
        if let Some((_, t)) = hw.pending {
            if t <= t_next {
                t_next = t;
                kind = NextEvent::Pending;
            }
        }

        // Advance execution to the event — every core of the domain is
        // visited, finished (idle-parked) or not. The other engines
        // instead drop finished cores from their live sets; the results
        // are identical (advancing a finished core is a no-op), only
        // the per-core step accounting differs.
        let dt = t_next.saturating_since(hw.now);
        if !dt.is_zero() {
            for i in 0..cores.len() {
                if arena.finished(i) {
                    continue;
                }
                let insts = arena.rate[i] * perf * dt.as_secs_f64();
                arena.advance(i, insts);
            }
            hw.run_for(dt);
        }

        dispatch_event(kind, &mut arena, &mut cores, &mut hw, &mut os, tele);
    }

    collect(&cores, &arena, hw, &os, workload)
}
