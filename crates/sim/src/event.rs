//! The discrete-event scheduler: a deterministic binary min-heap of
//! `(next_tick, component_id)` pairs and the [`Component`] model built
//! on it.
//!
//! Every schedulable entity — a core waiting for its next faultable
//! instruction, the deadline timer, an in-flight asynchronous p-state
//! change, a fleet DVFS domain between thermal sync points, a rack's
//! thermal governor — exposes the same two-phase contract:
//!
//! 1. [`Component::next_tick`] names the absolute simulation time of the
//!    entity's next event (or `None` while idle);
//! 2. [`Component::on_tick`] reacts when the global clock reaches it.
//!
//! The scheduler pops the earliest tick from the [`EventHeap`]; ties are
//! broken by *component id*, ascending. The id assignment is therefore
//! part of the semantics: within a domain, the pending p-state arrival
//! (id 0) precedes the deadline timer (id 1) precedes the cores (ids
//! 2..), which reproduces the event priority the engine has always had —
//! and because the order is a pure function of `(tick, id)`, replay is
//! byte-identical on every run and at every thread count.
//!
//! [`run_domain`] is the production event loop behind every `simulate*`
//! and `run_stream*` entry point. It intentionally reuses the exact
//! per-quantum advancement arithmetic of the legacy scan loop (kept in
//! [`crate::legacy`] for the differential suite): only event *selection*
//! moved to the heap, so results are bit-for-bit identical while
//! finished (idle-parked) cores drop out of the live set instead of
//! being rescanned on every iteration.

use suit_core::SuitOs;
use suit_isa::{SimDuration, SimTime};
use suit_telemetry::{Counter, Telemetry};
use suit_trace::Burst;

use crate::engine::{CoreStream, Hw};

/// A deterministic binary min-heap of `(tick, component_id)` events.
///
/// Ordering is lexicographic: earliest tick first, lowest component id
/// on ties. The heap is a plain array-backed sift-up/sift-down heap with
/// no randomization and no insertion-order dependence in its pop
/// sequence (equal keys cannot exist — ids are unique per round), so a
/// given set of events always drains in the same total order.
#[derive(Debug, Default, Clone)]
pub struct EventHeap {
    entries: Vec<(SimTime, u32)>,
}

impl EventHeap {
    /// An empty heap.
    pub fn new() -> Self {
        EventHeap::default()
    }

    /// An empty heap with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventHeap {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every scheduled event, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Schedules component `id` at time `tick`.
    pub fn push(&mut self, tick: SimTime, id: u32) {
        self.entries.push((tick, id));
        self.sift_up(self.entries.len() - 1);
    }

    /// The earliest `(tick, id)` without removing it.
    pub fn peek(&self) -> Option<(SimTime, u32)> {
        self.entries.first().copied()
    }

    /// Removes and returns the earliest `(tick, id)`; lowest id wins
    /// ties.
    pub fn pop(&mut self) -> Option<(SimTime, u32)> {
        let top = *self.entries.first()?;
        let last = self.entries.pop().expect("non-empty");
        if !self.entries.is_empty() {
            self.entries[0] = last;
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i] < self.entries[parent] {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut min = i;
            if l < n && self.entries[l] < self.entries[min] {
                min = l;
            }
            if r < n && self.entries[r] < self.entries[min] {
                min = r;
            }
            if min == i {
                break;
            }
            self.entries.swap(i, min);
            i = min;
        }
    }
}

/// A schedulable simulation entity.
///
/// `Ctx` is the shared state the component reads its clock from and
/// mutates when dispatched — the domain hardware state for cores, the
/// fleet state for DVFS domains and rack thermal governors. Components
/// never see each other directly; all interaction flows through `Ctx`,
/// which is what makes the scheduling order (and therefore replay) a
/// pure function of the `(tick, id)` heap keys.
pub trait Component<Ctx: ?Sized> {
    /// Absolute time of this component's next event; `None` while it has
    /// nothing scheduled (a finished core, an unarmed timer, a drained
    /// epoch sequence).
    fn next_tick(&self, ctx: &Ctx) -> Option<SimTime>;

    /// Reacts to the clock reaching `next_tick()`. `now` is the popped
    /// tick, clamped to never precede the context's current clock.
    fn on_tick(&mut self, now: SimTime, ctx: &mut Ctx);
}

/// Heap component id of the pending asynchronous p-state arrival.
pub(crate) const PENDING_ID: u32 = 0;
/// Heap component id of the deadline timer.
pub(crate) const TIMER_ID: u32 = 1;
/// Heap component ids of the cores start here: core `i` is `2 + i`.
pub(crate) const CORE_ID_BASE: u32 = 2;

/// Shared intra-domain state handed to components on dispatch.
pub(crate) struct DomainCtx<'a> {
    pub(crate) hw: &'a mut Hw,
    pub(crate) os: &'a mut SuitOs,
    pub(crate) tele: &'a Telemetry,
    /// Index of the core being dispatched (set by the scheduler before
    /// a core's `on_tick`; exception records carry it).
    pub(crate) core: usize,
}

impl<'a, I: Iterator<Item = Burst>> Component<DomainCtx<'a>> for CoreStream<I> {
    fn next_tick(&self, ctx: &DomainCtx<'a>) -> Option<SimTime> {
        if self.finished() {
            return None;
        }
        // The same arithmetic, in the same order, as the legacy scan:
        // instructions to the next point of interest over the current
        // effective rate. Byte-identity of the differential suite hangs
        // on this expression not being algebraically "simplified".
        let hw = &*ctx.hw;
        Some(hw.now + SimDuration::from_secs_f64(self.rem_next() / (self.base_rate * hw.perf())))
    }

    fn on_tick(&mut self, _now: SimTime, ctx: &mut DomainCtx<'a>) {
        self.core_event(ctx.core, ctx.hw, ctx.os, ctx.tele);
    }
}

/// The deadline timer as a schedulable component (§4.1: armed on every
/// completed faultable instruction, fires the switch back to `E`).
pub(crate) struct TimerSlot;

impl<'a> Component<DomainCtx<'a>> for TimerSlot {
    fn next_tick(&self, ctx: &DomainCtx<'a>) -> Option<SimTime> {
        ctx.hw.timer.expires_at()
    }

    fn on_tick(&mut self, _now: SimTime, ctx: &mut DomainCtx<'a>) {
        // Verbatim the legacy Timer arm: expiry is checked against the
        // hardware clock, which the advance phase has already moved.
        if ctx.hw.timer.take_expired(ctx.hw.now) {
            ctx.os.on_timer_interrupt(ctx.hw);
        }
    }
}

/// An in-flight asynchronous p-state change as a schedulable component
/// (e.g. the 𝑓𝑉 strategy's voltage raise completing 335 µs later).
pub(crate) struct PendingSlot;

impl<'a> Component<DomainCtx<'a>> for PendingSlot {
    fn next_tick(&self, ctx: &DomainCtx<'a>) -> Option<SimTime> {
        ctx.hw.pending.map(|(_, t)| t)
    }

    fn on_tick(&mut self, _now: SimTime, ctx: &mut DomainCtx<'a>) {
        // Verbatim the legacy Pending arm.
        let (target, _) = ctx.hw.pending.take().expect("pending scheduled this round");
        ctx.hw.apply_pending(target);
    }
}

/// The event-heap domain loop: runs `cores` (one shared DVFS domain) to
/// completion against the booted `hw`/`os` state.
///
/// Each round re-schedules every live component on the heap and
/// dispatches the earliest `(tick, id)`. Cores whose trace has ended
/// leave the `live` set permanently: an idle-parked core is neither
/// rescanned, advanced, nor counted — `Counter::CoreSteps` increments
/// only for cores that actually execute during a quantum, which is the
/// observable fix for the legacy loop's "step every core of the domain,
/// idle or not" behaviour.
pub(crate) fn run_domain<I: Iterator<Item = Burst>>(
    cores: &mut [CoreStream<I>],
    hw: &mut Hw,
    os: &mut SuitOs,
    tele: &Telemetry,
) {
    let mut heap = EventHeap::with_capacity(cores.len() + 2);
    let mut live: Vec<u32> = (0..cores.len() as u32).collect();
    let mut guard: u64 = 0;

    loop {
        guard += 1;
        assert!(guard < 2_000_000_000, "simulation failed to converge");

        live.retain(|&i| !cores[i as usize].finished());
        if live.is_empty() {
            break;
        }

        let mut ctx = DomainCtx {
            hw,
            os,
            tele,
            core: 0,
        };

        // Schedule every live component. Equal ticks drain in id order:
        // pending (0) before timer (1) before cores (2 + index), exactly
        // the tie priority of the legacy scan.
        heap.clear();
        for &i in &live {
            if let Some(t) = cores[i as usize].next_tick(&ctx) {
                heap.push(t, CORE_ID_BASE + i);
            }
        }
        if let Some(t) = TimerSlot.next_tick(&ctx) {
            heap.push(t, TIMER_ID);
        }
        if let Some(t) = PendingSlot.next_tick(&ctx) {
            heap.push(t, PENDING_ID);
        }
        let (t_next, id) = heap.pop().expect("live set is non-empty");

        // Advance execution to the event: the identical per-quantum
        // arithmetic as the legacy loop (same perf load, same product),
        // restricted to the live set — advancing a finished core was
        // always a no-op, so skipping it cannot change results.
        let dt = t_next.saturating_since(ctx.hw.now);
        if !dt.is_zero() {
            let perf = ctx.hw.perf();
            for &i in &live {
                let c = &mut cores[i as usize];
                c.advance(c.base_rate * perf * dt.as_secs_f64());
            }
            tele.count(Counter::EngineQuanta);
            tele.add(Counter::CoreSteps, live.len() as u64);
            ctx.hw.run_for(dt);
        }

        match id {
            PENDING_ID => PendingSlot.on_tick(t_next, &mut ctx),
            TIMER_ID => TimerSlot.on_tick(t_next, &mut ctx),
            id => {
                let i = (id - CORE_ID_BASE) as usize;
                ctx.core = i;
                // `on_tick` takes the component itself; hand it the one
                // core the id names.
                let (c, ctx) = (&mut cores[i], &mut ctx);
                c.on_tick(t_next, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_picos(ps)
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        for (tick, id) in [(5u64, 1u32), (3, 2), (9, 3), (1, 4), (7, 5)] {
            h.push(t(tick), id);
        }
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push(e);
        }
        assert_eq!(
            out,
            vec![(t(1), 4), (t(3), 2), (t(5), 1), (t(7), 5), (t(9), 3)]
        );
    }

    #[test]
    fn equal_ticks_drain_in_id_order() {
        // Push ids against insertion order to make sure ordering comes
        // from the key, not the arrival sequence.
        let mut h = EventHeap::new();
        for id in [7u32, 3, 9, 0, 5, 1] {
            h.push(t(42), id);
        }
        let ids: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut h = EventHeap::new();
        h.push(t(10), 0);
        h.push(t(4), 1);
        assert_eq!(h.pop(), Some((t(4), 1)));
        h.push(t(2), 2);
        h.push(t(10), 3);
        assert_eq!(h.pop(), Some((t(2), 2)));
        assert_eq!(h.pop(), Some((t(10), 0)));
        assert_eq!(h.pop(), Some((t(10), 3)));
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn clear_keeps_the_heap_usable() {
        let mut h = EventHeap::with_capacity(4);
        h.push(t(1), 1);
        h.clear();
        assert_eq!(h.len(), 0);
        h.push(t(8), 2);
        h.push(t(6), 3);
        assert_eq!(h.peek(), Some((t(6), 3)));
    }
}
