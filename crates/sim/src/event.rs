//! The discrete-event scheduler: a deterministic binary min-heap of
//! `(next_tick, component_id)` pairs and the [`Component`] model built
//! on it.
//!
//! Every schedulable entity — a core waiting for its next faultable
//! instruction, the deadline timer, an in-flight asynchronous p-state
//! change, a fleet DVFS domain between thermal sync points, a rack's
//! thermal governor — exposes the same two-phase contract:
//!
//! 1. [`Component::next_tick`] names the absolute simulation time of the
//!    entity's next event (or `None` while idle);
//! 2. [`Component::on_tick`] reacts when the global clock reaches it.
//!
//! The scheduler pops the earliest tick from the [`EventHeap`]; ties are
//! broken by *component id*, ascending. The id assignment is therefore
//! part of the semantics: within a domain, the pending p-state arrival
//! (id 0) precedes the deadline timer (id 1) precedes the cores (ids
//! 2..), which reproduces the event priority the engine has always had —
//! and because the order is a pure function of `(tick, id)`, replay is
//! byte-identical on every run and at every thread count.
//!
//! [`run_domain`] is the event-heap domain loop. It was the production
//! engine of PR 8 and is now kept — entry points in
//! [`crate::heap_ref`] — as the second reference implementation for the
//! differential equivalence suite, alongside [`crate::legacy`]'s linear
//! scan; production moved to the arena scheduler in [`crate::arena`],
//! which replaces the per-round heap rebuild with a linear argmin over
//! the flat core state and batches lone-core intra-burst events. All
//! three share the exact per-quantum advancement arithmetic, so results
//! are bit-for-bit identical. The [`EventHeap`] and [`Component`]
//! abstractions remain the production machinery of the fleet engine
//! ([`crate::fleet`]).

use suit_core::SuitOs;
use suit_isa::{SimDuration, SimTime};
use suit_telemetry::{Counter, Telemetry};
use suit_trace::Burst;

use crate::engine::{dispatch_event, CoreArena, CoreStream, Hw, NextEvent};

/// A deterministic binary min-heap of `(tick, component_id)` events.
///
/// Ordering is lexicographic: earliest tick first, lowest component id
/// on ties. The heap is a plain array-backed sift-up/sift-down heap with
/// no randomization and no insertion-order dependence in its pop
/// sequence (equal keys cannot exist — ids are unique per round), so a
/// given set of events always drains in the same total order.
#[derive(Debug, Default, Clone)]
pub struct EventHeap {
    entries: Vec<(SimTime, u32)>,
}

impl EventHeap {
    /// An empty heap.
    pub fn new() -> Self {
        EventHeap::default()
    }

    /// An empty heap with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventHeap {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every scheduled event, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Schedules component `id` at time `tick`.
    pub fn push(&mut self, tick: SimTime, id: u32) {
        self.entries.push((tick, id));
        self.sift_up(self.entries.len() - 1);
    }

    /// The earliest `(tick, id)` without removing it.
    pub fn peek(&self) -> Option<(SimTime, u32)> {
        self.entries.first().copied()
    }

    /// Removes and returns the earliest `(tick, id)`; lowest id wins
    /// ties.
    pub fn pop(&mut self) -> Option<(SimTime, u32)> {
        let top = *self.entries.first()?;
        let last = self.entries.pop().expect("non-empty");
        if !self.entries.is_empty() {
            self.entries[0] = last;
            self.sift_down(0);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i] < self.entries[parent] {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut min = i;
            if l < n && self.entries[l] < self.entries[min] {
                min = l;
            }
            if r < n && self.entries[r] < self.entries[min] {
                min = r;
            }
            if min == i {
                break;
            }
            self.entries.swap(i, min);
            i = min;
        }
    }
}

/// A schedulable simulation entity.
///
/// `Ctx` is the shared state the component reads its clock from and
/// mutates when dispatched — the domain hardware state for cores, the
/// fleet state for DVFS domains and rack thermal governors. Components
/// never see each other directly; all interaction flows through `Ctx`,
/// which is what makes the scheduling order (and therefore replay) a
/// pure function of the `(tick, id)` heap keys.
pub trait Component<Ctx: ?Sized> {
    /// Absolute time of this component's next event; `None` while it has
    /// nothing scheduled (a finished core, an unarmed timer, a drained
    /// epoch sequence).
    fn next_tick(&self, ctx: &Ctx) -> Option<SimTime>;

    /// Reacts to the clock reaching `next_tick()`. `now` is the popped
    /// tick, clamped to never precede the context's current clock.
    fn on_tick(&mut self, now: SimTime, ctx: &mut Ctx);
}

/// Heap component id of the pending asynchronous p-state arrival.
pub(crate) const PENDING_ID: u32 = 0;
/// Heap component id of the deadline timer.
pub(crate) const TIMER_ID: u32 = 1;
/// Heap component ids of the cores start here: core `i` is `2 + i`.
pub(crate) const CORE_ID_BASE: u32 = 2;

/// The event-heap domain loop: runs `cores` (one shared DVFS domain) to
/// completion against the booted `hw`/`os` state.
///
/// Each round re-schedules every live component on the heap and
/// dispatches the earliest `(tick, id)`. Cores whose trace has ended
/// leave the `live` set permanently: an idle-parked core is neither
/// rescanned, advanced, nor counted — `Counter::CoreSteps` increments
/// only for cores that actually execute during a quantum, which is the
/// observable fix for the legacy loop's "step every core of the domain,
/// idle or not" behaviour.
pub(crate) fn run_domain<I: Iterator<Item = Burst>>(
    cores: &mut [CoreStream<I>],
    arena: &mut CoreArena,
    hw: &mut Hw,
    os: &mut SuitOs,
    tele: &Telemetry,
) {
    let mut heap = EventHeap::with_capacity(cores.len() + 2);
    let mut live: Vec<u32> = (0..cores.len() as u32).collect();
    let mut guard: u64 = 0;

    loop {
        guard += 1;
        assert!(guard < 2_000_000_000, "simulation failed to converge");

        live.retain(|&i| !arena.finished(i as usize));
        if live.is_empty() {
            break;
        }

        // Schedule every live component. Equal ticks drain in id order:
        // pending (0) before timer (1) before cores (2 + index), exactly
        // the tie priority of the legacy scan.
        heap.clear();
        for &i in &live {
            let idx = i as usize;
            // The same arithmetic, in the same order, as the other
            // engines: instructions to the next point of interest over
            // the current effective rate. Byte-identity of the
            // differential suite hangs on this expression not being
            // algebraically "simplified".
            let t = hw.now
                + SimDuration::from_secs_f64(arena.rem_next(idx) / (arena.rate[idx] * hw.perf()));
            heap.push(t, CORE_ID_BASE + i);
        }
        if let Some(t) = hw.timer.expires_at() {
            heap.push(t, TIMER_ID);
        }
        if let Some((_, t)) = hw.pending {
            heap.push(t, PENDING_ID);
        }
        let (t_next, id) = heap.pop().expect("live set is non-empty");

        // Advance execution to the event: the identical per-quantum
        // arithmetic as the legacy loop (same perf load, same product),
        // restricted to the live set — advancing a finished core was
        // always a no-op, so skipping it cannot change results.
        let dt = t_next.saturating_since(hw.now);
        if !dt.is_zero() {
            let perf = hw.perf();
            for &i in &live {
                let idx = i as usize;
                let insts = arena.rate[idx] * perf * dt.as_secs_f64();
                arena.advance(idx, insts);
            }
            tele.count(Counter::EngineQuanta);
            tele.add(Counter::CoreSteps, live.len() as u64);
            hw.run_for(dt);
        }

        let kind = match id {
            PENDING_ID => NextEvent::Pending,
            TIMER_ID => NextEvent::Timer,
            id => NextEvent::Core((id - CORE_ID_BASE) as usize),
        };
        dispatch_event(kind, arena, cores, hw, os, tele);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_picos(ps)
    }

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        for (tick, id) in [(5u64, 1u32), (3, 2), (9, 3), (1, 4), (7, 5)] {
            h.push(t(tick), id);
        }
        let mut out = Vec::new();
        while let Some(e) = h.pop() {
            out.push(e);
        }
        assert_eq!(
            out,
            vec![(t(1), 4), (t(3), 2), (t(5), 1), (t(7), 5), (t(9), 3)]
        );
    }

    #[test]
    fn equal_ticks_drain_in_id_order() {
        // Push ids against insertion order to make sure ordering comes
        // from the key, not the arrival sequence.
        let mut h = EventHeap::new();
        for id in [7u32, 3, 9, 0, 5, 1] {
            h.push(t(42), id);
        }
        let ids: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|(_, id)| id).collect();
        assert_eq!(ids, vec![0, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut h = EventHeap::new();
        h.push(t(10), 0);
        h.push(t(4), 1);
        assert_eq!(h.pop(), Some((t(4), 1)));
        h.push(t(2), 2);
        h.push(t(10), 3);
        assert_eq!(h.pop(), Some((t(2), 2)));
        assert_eq!(h.pop(), Some((t(10), 0)));
        assert_eq!(h.pop(), Some((t(10), 3)));
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn clear_keeps_the_heap_usable() {
        let mut h = EventHeap::with_capacity(4);
        h.push(t(1), 1);
        h.clear();
        assert_eq!(h.len(), 0);
        h.push(t(8), 2);
        h.push(t(6), 3);
        assert_eq!(h.peek(), Some((t(6), 3)));
    }
}
