//! Closed-loop thermally-coupled simulation.
//!
//! The paper treats temperature as a static budget (Table 3: −90 mV at
//! 50 °C, −55 mV at 88 °C) and the undervolt level as fixed per run. In
//! operation the three interact: the chosen offset changes package power,
//! power changes temperature (the RC model of `suit-hw::thermal`), and
//! temperature bounds the next offset (the governor of
//! `suit-core::governor`). This module closes that loop:
//!
//! ```text
//! ┌─> governor picks level (Table 3 + aging budgets at current T)
//! │        │
//! │   simulate one time slice at that level  ──>  relative power
//! │        │
//! └── thermal model integrates watts over the slice ──> new T
//! ```
//!
//! The emergent behaviour matches §5.7's measurements: a starved fan
//! heats the package until even −70 mV is unsafe and SUIT falls back to
//! stock operation; restoring airflow recovers the efficient levels. The
//! loop also shows the *stabilising* feedback the paper implies: running
//! undervolted draws less power, which keeps the package cooler, which
//! keeps the deep level available.

use suit_core::governor::{GovernorConfig, OffsetGovernor};
use suit_hw::{CpuModel, UndervoltLevel};
use suit_isa::SimDuration;
use suit_trace::WorkloadProfile;

use crate::engine::{simulate, SimConfig};

/// Configuration of the closed loop.
#[derive(Debug, Clone)]
pub struct ThermalLoopConfig {
    /// Control period: how often the governor re-decides.
    pub slice: SimDuration,
    /// Number of slices to run.
    pub slices: usize,
    /// Fan speed at loop start, RPM.
    pub fan_rpm: f64,
    /// Deployment age for the aging budget, years.
    pub deployment_years: f64,
    /// Trace seed.
    pub seed: u64,
}

impl Default for ThermalLoopConfig {
    fn default() -> Self {
        ThermalLoopConfig {
            slice: SimDuration::from_millis(500),
            slices: 240, // two minutes of operation
            fan_rpm: 1800.0,
            deployment_years: 0.0,
            seed: 0x5017,
        }
    }
}

/// One control-period record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceRecord {
    /// Wall time at the *end* of the slice, seconds.
    pub t_secs: f64,
    /// Junction temperature at the end of the slice, °C.
    pub temp_c: f64,
    /// The level the governor allowed for this slice (`None` = too hot
    /// for any efficient curve; SUIT idles at stock operation).
    pub level: Option<UndervoltLevel>,
    /// Mean package power over the slice, W.
    pub power_w: f64,
    /// Efficiency delta of the slice vs. stock (0 when SUIT is off).
    pub efficiency: f64,
}

/// The loop outcome: the full trace plus summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalLoopResult {
    /// Per-slice records.
    pub records: Vec<SliceRecord>,
}

impl ThermalLoopResult {
    /// Fraction of slices that ran on some efficient curve.
    pub fn enabled_fraction(&self) -> f64 {
        let on = self.records.iter().filter(|r| r.level.is_some()).count();
        on as f64 / self.records.len().max(1) as f64
    }

    /// Mean efficiency delta over the whole run (thermally-aware SUIT's
    /// real-world gain).
    pub fn mean_efficiency(&self) -> f64 {
        self.records.iter().map(|r| r.efficiency).sum::<f64>() / self.records.len().max(1) as f64
    }

    /// The last recorded temperature.
    pub fn final_temp_c(&self) -> f64 {
        self.records.last().map_or(0.0, |r| r.temp_c)
    }
}

/// Runs the closed loop: governor → simulator → thermal model → governor.
///
/// `fan_schedule` optionally changes the fan speed at a slice index
/// (`(index, rpm)` pairs), modelling the §5.7 experiment's fan steps.
pub fn thermal_loop(
    cpu: &CpuModel,
    profile: &WorkloadProfile,
    cfg: &ThermalLoopConfig,
    fan_schedule: &[(usize, f64)],
) -> ThermalLoopResult {
    assert!(cfg.slices >= 1, "need at least one slice");
    let mut governor = OffsetGovernor::new(
        GovernorConfig {
            deployment_years: cfg.deployment_years,
            reserve_frac: 0.8,
            curve: cpu.curve().clone(),
        },
        cfg.fan_rpm,
    );

    // Stock package power for this CPU's SPEC operating point.
    let base_watts = cpu.steady.response(0.0).power_w;
    // Instructions one slice covers at the stock rate.
    let slice_insts =
        (profile.ipc * cpu.steady.base_freq_ghz * 1e9 * cfg.slice.as_secs_f64()) as u64;

    // Pre-simulate the two levels once: the slice results only depend on
    // the level (the workload is statistically stationary), so the loop
    // reuses them instead of re-running the engine hundreds of times.
    let run_level = |level: UndervoltLevel| {
        let sim_cfg = SimConfig {
            seed: cfg.seed,
            ..SimConfig::fv_intel(level)
        }
        .with_max_insts(slice_insts.max(50_000_000));
        simulate(cpu, profile, &sim_cfg)
    };
    let per_level = [
        run_level(UndervoltLevel::Mv70),
        run_level(UndervoltLevel::Mv97),
    ];

    let mut records = Vec::with_capacity(cfg.slices);
    for i in 0..cfg.slices {
        if let Some(&(_, rpm)) = fan_schedule.iter().find(|(at, _)| *at == i) {
            governor.set_fan_rpm(rpm);
        }
        let level = governor.level();
        let (rel_power, eff) = match level {
            Some(UndervoltLevel::Mv70) => (1.0 + per_level[0].power(), per_level[0].efficiency()),
            Some(UndervoltLevel::Mv97) => (1.0 + per_level[1].power(), per_level[1].efficiency()),
            None => (1.0, 0.0),
        };
        let watts = base_watts * rel_power;
        governor.step(cfg.slice, watts);
        records.push(SliceRecord {
            t_secs: (i + 1) as f64 * cfg.slice.as_secs_f64(),
            temp_c: governor.temperature_c(),
            level,
            power_w: watts,
            efficiency: eff,
        });
    }
    ThermalLoopResult { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suit_trace::profile;

    fn xeon() -> CpuModel {
        CpuModel::xeon_4208()
    }

    fn fast_cfg(slices: usize, fan: f64) -> ThermalLoopConfig {
        ThermalLoopConfig {
            slice: SimDuration::from_millis(500),
            slices,
            fan_rpm: fan,
            deployment_years: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn cool_machine_keeps_an_efficient_level() {
        let r = thermal_loop(
            &xeon(),
            profile::by_name("557.xz").unwrap(),
            &fast_cfg(200, 1800.0),
            &[],
        );
        // At full fan the package settles near 50 °C (Table 3) — the
        // governor holds an efficient level throughout.
        assert!(r.enabled_fraction() > 0.95, "{:.2}", r.enabled_fraction());
        assert!(r.mean_efficiency() > 0.03, "{:+.3}", r.mean_efficiency());
        assert!(r.final_temp_c() < 60.0, "{:.1}", r.final_temp_c());
    }

    #[test]
    fn starved_fan_forces_fallback_and_recovery_restores_it() {
        // §5.7's experiment as a schedule: full fan, then starve it at
        // slice 100, then restore at slice 400.
        let cfg = fast_cfg(700, 1800.0);
        let r = thermal_loop(
            &xeon(),
            profile::by_name("502.gcc").unwrap(),
            &cfg,
            &[(100, 300.0), (400, 1800.0)],
        );
        // Phase 1 (cool): enabled.
        assert!(r.records[50].level.is_some());
        // Phase 2 (starved): heats past the ~72 °C point where even
        // −70 mV stops being safe (Table 3's slope) → falls back. The
        // system self-regulates around that boundary, so assert the
        // qualitative state rather than a precise temperature.
        let hot = &r.records[380];
        assert!(hot.temp_c > 73.0, "{:.1}", hot.temp_c);
        assert!(hot.level.is_none(), "must fall back when too hot");
        // Phase 3 (recovered): cools and re-enables.
        let end = r.records.last().unwrap();
        assert!(end.temp_c < 65.0, "{:.1}", end.temp_c);
        assert!(end.level.is_some(), "cooling must restore a level");
        // The trace actually transitioned both ways.
        assert!(
            (0.2..0.9).contains(&r.enabled_fraction()),
            "{:.2}",
            r.enabled_fraction()
        );
    }

    #[test]
    fn undervolting_feedback_is_stabilising() {
        // With SUIT enabled the package draws less power, so the steady
        // temperature is lower than stock — the loop must reflect that.
        let enabled = thermal_loop(
            &xeon(),
            profile::by_name("557.xz").unwrap(),
            &fast_cfg(300, 900.0),
            &[],
        );
        // Baseline: force stock operation by aging the machine to the
        // design corner (no borrowable guardband, hot limits bind) — use
        // a deployment so old even −70 mV is unavailable at this temp.
        let mut cfg = fast_cfg(300, 900.0);
        cfg.deployment_years = 10.0;
        let stock_leaning = thermal_loop(&xeon(), profile::by_name("557.xz").unwrap(), &cfg, &[]);
        assert!(
            enabled.final_temp_c() <= stock_leaning.final_temp_c() + 0.1,
            "{:.1} vs {:.1}",
            enabled.final_temp_c(),
            stock_leaning.final_temp_c()
        );
    }

    #[test]
    fn records_cover_every_slice_in_order() {
        let r = thermal_loop(
            &xeon(),
            profile::by_name("520.omnetpp").unwrap(),
            &fast_cfg(50, 1200.0),
            &[],
        );
        assert_eq!(r.records.len(), 50);
        for w in r.records.windows(2) {
            assert!(w[1].t_secs > w[0].t_secs);
        }
        // Temperatures approach steady state monotonically from ambient.
        assert!(r.records[0].temp_c < r.records[49].temp_c);
    }
}
