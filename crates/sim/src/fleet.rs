//! Fleet-scale simulation: racks of DVFS domains under per-rack thermal
//! governors, sharded across `suit-exec` between thermal sync points.
//!
//! The single-machine engine simulates one DVFS domain. A fleet is
//! thousands of them: `racks × domains_per_rack` domains of
//! `cores_per_domain` cores each, where every rack has its own cooling
//! (fan speed), its own age (borrowable guardband), and therefore its
//! own *realized* Vmin curve — the governor of `suit-core::governor`
//! decides per rack which undervolt level is safe, and the fleet runs
//! each domain at the shallower of the requested and the allowed level.
//!
//! Time is divided into *epochs* (thermal sync points). Within an epoch
//! every active domain is independent: its slice is a pure function of
//! `(seed, domain, epoch)` — seeds derive via the fork chain
//! `SuitRng::seed_from_u64(seed).fork(domain).fork(epoch)` — so epochs
//! shard over [`suit_exec::run`] with results byte-identical at every
//! thread count. At the sync point each rack aggregates its domains in
//! domain-index order, integrates package power into its thermal model,
//! and the governor re-decides the allowed level for the next epoch.
//! Slice results only depend on the level (workloads are statistically
//! stationary, the same argument as [`crate::thermal_loop`]), so
//! domains need no resumable engine state across epochs.
//!
//! Two drivers produce bit-for-bit identical [`FleetResult`]s:
//!
//! * [`FleetSim::run`] — the production path: epoch loop, domains
//!   fanned out over `suit-exec`, telemetry roll-ups merged in
//!   domain-index order.
//! * [`FleetSim::run_event_driven`] — the same fleet driven through the
//!   [`Component`]/[`EventHeap`] scheduler of [`crate::event`]: DVFS
//!   domains and rack thermal loops are scheduled as components on one
//!   global clock, ties broken by component id (thermal ids precede
//!   domain ids, so a sync point settles before the next epoch starts).
//!   The equality of the two is pinned by the scheduler property suite.
//!
//! The *consolidation knob* (`utilization`) parks whole domains:
//! workloads consolidate onto the lowest-indexed domains and parked
//! domains are power-gated — they execute nothing, draw nothing, and
//! contribute zero per-core step events. Fewer active domains per rack
//! mean lower rack power, cooler packages, and deeper allowed
//! undervolt levels on what remains: the fleet-economics interplay the
//! Scrooge-attack literature studies, here on the defender's side.

use suit_core::governor::{GovernorConfig, OffsetGovernor};
use suit_core::strategy::StrategyParams;
use suit_core::OperatingStrategy;
use suit_exec::Threads;
use suit_hw::{CpuModel, UndervoltLevel};
use suit_isa::{SimDuration, SimTime};
use suit_rng::{RngCore, SuitRng};
use suit_telemetry::{json, Telemetry, TelemetrySnapshot};
use suit_trace::{profile, WorkloadProfile};

use crate::engine::{simulate_telemetry, SimConfig};
use crate::event::{Component, EventHeap};
use crate::result::RunResult;

/// Upper bound on racks.
pub const MAX_RACKS: usize = 4096;
/// Upper bound on total domains (`racks × domains_per_rack`).
pub const MAX_DOMAINS: usize = 1 << 16;
/// Upper bound on total cores (`domains × cores_per_domain`).
pub const MAX_CORES: usize = 1 << 20;
/// Upper bound on epochs.
pub const MAX_EPOCHS: usize = 100_000;
/// Upper bound on instructions per core per epoch.
pub const MAX_EPOCH_INSTS: u64 = 1_000_000_000_000;
/// Upper bound on `epochs × epoch_insts` (keeps epoch ticks well inside
/// the picosecond clock).
pub const MAX_TOTAL_INSTS: u64 = 1_000_000_000_000_000;
/// Upper bound on the workload rotation list.
pub const MAX_WORKLOADS: usize = 4096;

/// Configuration of a fleet scenario.
///
/// Constructed directly, via [`Default`], or parsed from JSON with
/// [`FleetConfig::from_json`]. [`FleetSim::new`] validates every field
/// (and every count *before* any allocation derived from it).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// CPU model: `'a'` (i9-9900K), `'b'` (Ryzen 7700X), `'c'`
    /// (Xeon 4208).
    pub cpu: char,
    /// Operating strategy (a curve-switching one: 𝑓𝑉, 𝑓 or 𝑉).
    pub strategy: OperatingStrategy,
    /// Requested undervolt level; each rack's governor may cap it.
    pub level: UndervoltLevel,
    /// Number of racks (independent cooling + aging + governor each).
    pub racks: usize,
    /// DVFS domains per rack.
    pub domains_per_rack: usize,
    /// Cores per DVFS domain (sharing one curve state).
    pub cores_per_domain: usize,
    /// Thermal sync points to simulate.
    pub epochs: usize,
    /// Instructions per core per epoch.
    pub epoch_insts: u64,
    /// Root seed; per-slice seeds fork as `seed → domain → epoch`.
    pub seed: u64,
    /// Consolidation knob in `(0, 1]`: the fraction of domains that are
    /// powered on (lowest-indexed first); the rest are parked.
    pub utilization: f64,
    /// Workload names, assigned round-robin by domain index.
    pub workloads: Vec<String>,
    /// Per-rack fan speed, RPM. Empty selects the default cooling
    /// gradient (1800 RPM at rack 0 falling linearly to 1000 RPM).
    pub rack_fan_rpm: Vec<f64>,
    /// Per-rack deployment age, years. Empty uses `deployment_years`
    /// for every rack.
    pub rack_age_years: Vec<f64>,
    /// Default deployment age, years (aging guardband budget).
    pub deployment_years: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            cpu: 'c',
            strategy: OperatingStrategy::FreqVolt,
            level: UndervoltLevel::Mv97,
            racks: 4,
            domains_per_rack: 4,
            cores_per_domain: 4,
            epochs: 4,
            epoch_insts: 20_000_000,
            seed: 0x5017,
            utilization: 1.0,
            workloads: vec!["502.gcc".to_string()],
            rack_fan_rpm: Vec::new(),
            rack_age_years: Vec::new(),
            deployment_years: 0.0,
        }
    }
}

impl FleetConfig {
    /// Validates every field; counts are bounds-checked with checked
    /// arithmetic before anything is allocated from them.
    pub fn validate(&self) -> Result<(), String> {
        if !matches!(self.cpu, 'a' | 'b' | 'c') {
            return Err(format!("unknown cpu '{}' (a|b|c)", self.cpu));
        }
        if matches!(self.strategy, OperatingStrategy::Emulation) {
            return Err("fleet strategy must be curve-switching (fv|f|v)".to_string());
        }
        if self.racks == 0 || self.racks > MAX_RACKS {
            return Err(format!("racks must be in 1..={MAX_RACKS}"));
        }
        if self.domains_per_rack == 0 {
            return Err("domains_per_rack must be positive".to_string());
        }
        if self.cores_per_domain == 0 {
            return Err("cores_per_domain must be positive".to_string());
        }
        let domains = self
            .racks
            .checked_mul(self.domains_per_rack)
            .filter(|&d| d <= MAX_DOMAINS)
            .ok_or_else(|| format!("total domains exceed {MAX_DOMAINS}"))?;
        domains
            .checked_mul(self.cores_per_domain)
            .filter(|&c| c <= MAX_CORES)
            .ok_or_else(|| format!("total cores exceed {MAX_CORES}"))?;
        if self.epochs == 0 || self.epochs > MAX_EPOCHS {
            return Err(format!("epochs must be in 1..={MAX_EPOCHS}"));
        }
        if self.epoch_insts == 0 || self.epoch_insts > MAX_EPOCH_INSTS {
            return Err(format!("epoch_insts must be in 1..={MAX_EPOCH_INSTS}"));
        }
        (self.epochs as u64)
            .checked_mul(self.epoch_insts)
            .filter(|&t| t <= MAX_TOTAL_INSTS)
            .ok_or_else(|| format!("epochs x epoch_insts exceeds {MAX_TOTAL_INSTS}"))?;
        if !(self.utilization.is_finite() && self.utilization > 0.0 && self.utilization <= 1.0) {
            return Err("utilization must be in (0, 1]".to_string());
        }
        if self.workloads.is_empty() || self.workloads.len() > MAX_WORKLOADS {
            return Err(format!("workloads must name 1..={MAX_WORKLOADS} profiles"));
        }
        for name in &self.workloads {
            if profile::by_name(name).is_none() {
                return Err(format!("unknown workload '{name}'"));
            }
        }
        for (field, v) in [
            ("rack_fan_rpm", &self.rack_fan_rpm),
            ("rack_age_years", &self.rack_age_years),
        ] {
            if !v.is_empty() && v.len() != self.racks {
                return Err(format!(
                    "{field} must be empty or have one entry per rack ({})",
                    self.racks
                ));
            }
        }
        for rpm in &self.rack_fan_rpm {
            if !(rpm.is_finite() && (0.0..=10_000.0).contains(rpm)) {
                return Err("rack_fan_rpm entries must be finite, in 0..=10000".to_string());
            }
        }
        for (field, v, hi) in [
            ("rack_age_years", &self.rack_age_years, 30.0),
            ("deployment_years", &vec![self.deployment_years], 30.0),
        ] {
            for y in v {
                if !(y.is_finite() && (0.0..=hi).contains(y)) {
                    return Err(format!("{field} entries must be finite, in 0..={hi}"));
                }
            }
        }
        Ok(())
    }

    /// Parses a fleet scenario from a JSON document.
    ///
    /// Same contract as the `SUITTRC` readers: arbitrary byte soup,
    /// truncation, and hostile counts must come back as a structured
    /// `Err`, never a panic — counts are validated before any
    /// count-proportional allocation. Unknown keys are rejected so
    /// typos fail loudly.
    pub fn from_json(src: &str) -> Result<FleetConfig, String> {
        let doc = json::parse(src)?;
        let json::Value::Obj(pairs) = &doc else {
            return Err("fleet config must be a JSON object".to_string());
        };
        let mut cfg = FleetConfig::default();
        for (key, value) in pairs {
            match key.as_str() {
                "cpu" => {
                    let s = value
                        .as_str()
                        .ok_or_else(|| "'cpu' must be a string".to_string())?;
                    let mut chars = s.chars();
                    cfg.cpu = match (chars.next(), chars.next()) {
                        (Some(c), None) => c,
                        _ => return Err(format!("'cpu' must be one letter, got '{s}'")),
                    };
                }
                "strategy" => {
                    cfg.strategy = match value.as_str() {
                        Some("fv") => OperatingStrategy::FreqVolt,
                        Some("f") => OperatingStrategy::Frequency,
                        Some("v") => OperatingStrategy::Voltage,
                        _ => return Err("'strategy' must be \"fv\", \"f\" or \"v\"".to_string()),
                    };
                }
                "offset" => {
                    cfg.level = match value.as_f64() {
                        Some(70.0) => UndervoltLevel::Mv70,
                        Some(97.0) => UndervoltLevel::Mv97,
                        _ => return Err("'offset' must be 70 or 97".to_string()),
                    };
                }
                "racks" => cfg.racks = json_count(value, key)? as usize,
                "domains_per_rack" => cfg.domains_per_rack = json_count(value, key)? as usize,
                "cores_per_domain" => cfg.cores_per_domain = json_count(value, key)? as usize,
                "epochs" => cfg.epochs = json_count(value, key)? as usize,
                "epoch_insts" => cfg.epoch_insts = json_count(value, key)?,
                "seed" => cfg.seed = json_count(value, key)?,
                "utilization" => {
                    cfg.utilization = value
                        .as_f64()
                        .ok_or_else(|| "'utilization' must be a number".to_string())?;
                }
                "deployment_years" => {
                    cfg.deployment_years = value
                        .as_f64()
                        .ok_or_else(|| "'deployment_years' must be a number".to_string())?;
                }
                "workloads" => {
                    let arr = value
                        .as_arr()
                        .ok_or_else(|| "'workloads' must be an array".to_string())?;
                    cfg.workloads = arr
                        .iter()
                        .map(|v| {
                            v.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| "'workloads' entries must be strings".to_string())
                        })
                        .collect::<Result<Vec<String>, String>>()?;
                }
                "rack_fan_rpm" => cfg.rack_fan_rpm = json_numbers(value, key)?,
                "rack_age_years" => cfg.rack_age_years = json_numbers(value, key)?,
                other => return Err(format!("unknown key '{other}'")),
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Extracts a non-negative integer count from a JSON number, rejecting
/// fractions, negatives, and anything beyond exact-f64 range.
fn json_count(v: &json::Value, key: &str) -> Result<u64, String> {
    let n = v
        .as_f64()
        .ok_or_else(|| format!("'{key}' must be a number"))?;
    if !n.is_finite() || n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
        return Err(format!("'{key}' must be a non-negative integer"));
    }
    Ok(n as u64)
}

/// Extracts an array of finite numbers.
fn json_numbers(v: &json::Value, key: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("'{key}' must be an array"))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .filter(|n| n.is_finite())
                .ok_or_else(|| format!("'{key}' entries must be finite numbers"))
        })
        .collect()
}

/// One rack's aggregate over the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct RackReport {
    /// Rack index.
    pub rack: usize,
    /// This rack's fan speed, RPM.
    pub fan_rpm: f64,
    /// This rack's deployment age, years.
    pub age_years: f64,
    /// Domains of this rack that were powered on.
    pub active_domains: usize,
    /// Executed `(domain, epoch)` slices.
    pub slices: u64,
    /// Slices that ran on some efficient (undervolted) curve.
    pub enabled_slices: u64,
    /// Slices that ran at the deepest evaluated level (−97 mV).
    pub deep_slices: u64,
    /// Σ slice durations over active domains, seconds.
    pub duration_s: f64,
    /// Σ no-SUIT baseline durations, seconds.
    pub baseline_s: f64,
    /// Σ relative package energy (relative-power · seconds).
    pub energy_rel: f64,
    /// Faultable instructions executed.
    pub events: u64,
    /// `#DO` exceptions taken.
    pub exceptions: u64,
    /// Junction temperature after the last sync point, °C.
    pub final_temp_c: f64,
}

impl RackReport {
    fn new(rack: usize, fan_rpm: f64, age_years: f64, active_domains: usize) -> Self {
        RackReport {
            rack,
            fan_rpm,
            age_years,
            active_domains,
            slices: 0,
            enabled_slices: 0,
            deep_slices: 0,
            duration_s: 0.0,
            baseline_s: 0.0,
            energy_rel: 0.0,
            events: 0,
            exceptions: 0,
            final_temp_c: 0.0,
        }
    }

    fn add(&mut self, out: &EpochOut) {
        self.slices += 1;
        self.enabled_slices += u64::from(out.level.is_some());
        self.deep_slices += u64::from(out.level == Some(UndervoltLevel::Mv97));
        self.duration_s += out.result.duration.as_secs_f64();
        self.baseline_s += out.result.baseline_duration.as_secs_f64();
        self.energy_rel += out.result.energy_rel;
        self.events += out.result.events;
        self.exceptions += out.result.exceptions;
    }

    /// Throughput-weighted performance change vs. baseline.
    pub fn perf(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.baseline_s / self.duration_s - 1.0
        } else {
            0.0
        }
    }

    /// Mean package-power change vs. baseline.
    pub fn power(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.energy_rel / self.duration_s - 1.0
        } else {
            0.0
        }
    }

    /// Efficiency change, `(1 + perf) / (1 + power) − 1`.
    pub fn efficiency(&self) -> f64 {
        (1.0 + self.perf()) / (1.0 + self.power()) - 1.0
    }

    /// Fraction of slices that ran undervolted.
    pub fn enabled_fraction(&self) -> f64 {
        self.enabled_slices as f64 / (self.slices.max(1)) as f64
    }

    /// Fraction of slices that ran at the deepest level — this rack's
    /// realized Vmin curve in one number (cooling and age cap it).
    pub fn deep_fraction(&self) -> f64 {
        self.deep_slices as f64 / (self.slices.max(1)) as f64
    }
}

/// The fleet-run outcome: per-rack reports (in rack order) plus the
/// topology they aggregate over.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// One report per rack, in rack-index order.
    pub racks: Vec<RackReport>,
    /// Total domains in the topology.
    pub domains: usize,
    /// Domains that were powered on (consolidation knob).
    pub active_domains: usize,
    /// Total cores (active domains × cores per domain).
    pub cores: usize,
    /// Epochs simulated.
    pub epochs: usize,
}

impl FleetResult {
    /// Σ slice durations across the fleet, seconds.
    pub fn duration_s(&self) -> f64 {
        self.racks.iter().map(|r| r.duration_s).sum()
    }

    /// Σ baseline durations across the fleet, seconds.
    pub fn baseline_s(&self) -> f64 {
        self.racks.iter().map(|r| r.baseline_s).sum()
    }

    /// Σ relative package energy across the fleet.
    pub fn energy_rel(&self) -> f64 {
        self.racks.iter().map(|r| r.energy_rel).sum()
    }

    /// Faultable instructions executed fleet-wide.
    pub fn events(&self) -> u64 {
        self.racks.iter().map(|r| r.events).sum()
    }

    /// `#DO` exceptions taken fleet-wide.
    pub fn exceptions(&self) -> u64 {
        self.racks.iter().map(|r| r.exceptions).sum()
    }

    /// Fleet performance change vs. baseline.
    pub fn perf(&self) -> f64 {
        let d = self.duration_s();
        if d > 0.0 {
            self.baseline_s() / d - 1.0
        } else {
            0.0
        }
    }

    /// Fleet mean package-power change vs. baseline.
    pub fn power(&self) -> f64 {
        let d = self.duration_s();
        if d > 0.0 {
            self.energy_rel() / d - 1.0
        } else {
            0.0
        }
    }

    /// Fleet efficiency change.
    pub fn efficiency(&self) -> f64 {
        (1.0 + self.perf()) / (1.0 + self.power()) - 1.0
    }

    /// Fraction of executed slices that ran undervolted.
    pub fn enabled_fraction(&self) -> f64 {
        let slices: u64 = self.racks.iter().map(|r| r.slices).sum();
        let enabled: u64 = self.racks.iter().map(|r| r.enabled_slices).sum();
        enabled as f64 / slices.max(1) as f64
    }

    /// Renders the deterministic text report the CLI prints (identical
    /// bytes for identical configs, at every thread count).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet: {} domains ({} active) x {} cores = {} cores over {} racks, {} epochs\n",
            self.domains,
            self.active_domains,
            self.cores.checked_div(self.active_domains).unwrap_or(0),
            self.cores,
            self.racks.len(),
            self.epochs,
        ));
        out.push_str(&format!(
            "{:>5} {:>8} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
            "rack",
            "fan_rpm",
            "age_y",
            "temp_C",
            "enabled",
            "deep",
            "perf%",
            "power%",
            "eff%",
            "events"
        ));
        for r in &self.racks {
            out.push_str(&format!(
                "{:>5} {:>8.0} {:>6.1} {:>8.2} {:>7.1}% {:>7.1}% {:>8.3} {:>8.3} {:>8.3} {:>10}\n",
                r.rack,
                r.fan_rpm,
                r.age_years,
                r.final_temp_c,
                r.enabled_fraction() * 100.0,
                r.deep_fraction() * 100.0,
                r.perf() * 100.0,
                r.power() * 100.0,
                r.efficiency() * 100.0,
                r.events,
            ));
        }
        out.push_str(&format!(
            "fleet: perf {:+.3}%  power {:+.3}%  eff {:+.3}%  undervolted {:.1}%  events {}  exceptions {}\n",
            self.perf() * 100.0,
            self.power() * 100.0,
            self.efficiency() * 100.0,
            self.enabled_fraction() * 100.0,
            self.events(),
            self.exceptions(),
        ));
        out
    }
}

/// One domain's epoch slice outcome.
#[derive(Debug, Clone, PartialEq)]
struct EpochOut {
    result: RunResult,
    /// The realized undervolt level (`None`: stock fallback).
    level: Option<UndervoltLevel>,
}

/// A validated fleet scenario, ready to run.
#[derive(Debug)]
pub struct FleetSim {
    cfg: FleetConfig,
    cpu: CpuModel,
    params: StrategyParams,
    profiles: Vec<&'static WorkloadProfile>,
}

/// Event-ring capacity per domain-epoch telemetry shard.
const TELEMETRY_CAPACITY: usize = 2048;

impl FleetSim {
    /// Validates `cfg` and resolves the CPU model, strategy parameters
    /// and workload profiles.
    pub fn new(cfg: FleetConfig) -> Result<FleetSim, String> {
        cfg.validate()?;
        let cpu = match cfg.cpu {
            'a' => CpuModel::i9_9900k(),
            'b' => CpuModel::ryzen_7700x(),
            _ => CpuModel::xeon_4208(),
        };
        let params = match cfg.cpu {
            'b' => StrategyParams::amd(),
            _ => StrategyParams::intel(),
        };
        let profiles: Vec<&'static WorkloadProfile> = cfg
            .workloads
            .iter()
            .map(|name| profile::by_name(name).expect("validated"))
            .collect();
        Ok(FleetSim {
            cfg,
            cpu,
            params,
            profiles,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Total domains in the topology.
    pub fn domains(&self) -> usize {
        self.cfg.racks * self.cfg.domains_per_rack
    }

    /// Powered-on domains under the consolidation knob (at least one).
    pub fn active_domains(&self) -> usize {
        let total = self.domains();
        ((self.cfg.utilization * total as f64).round() as usize).clamp(1, total)
    }

    fn fan_rpm(&self, rack: usize) -> f64 {
        if !self.cfg.rack_fan_rpm.is_empty() {
            self.cfg.rack_fan_rpm[rack]
        } else if self.cfg.racks == 1 {
            1800.0
        } else {
            // Default cooling gradient: front-of-row racks run cooler.
            1800.0 - 800.0 * rack as f64 / (self.cfg.racks - 1) as f64
        }
    }

    fn age_years(&self, rack: usize) -> f64 {
        if self.cfg.rack_age_years.is_empty() {
            self.cfg.deployment_years
        } else {
            self.cfg.rack_age_years[rack]
        }
    }

    fn governor(&self, rack: usize) -> OffsetGovernor {
        OffsetGovernor::new(
            GovernorConfig {
                deployment_years: self.age_years(rack),
                reserve_frac: 0.8,
                curve: self.cpu.curve().clone(),
            },
            self.fan_rpm(rack),
        )
    }

    /// The sync grid: one epoch of instructions at the base clock. The
    /// grid is a scheduling device (domains run different workloads at
    /// different IPCs), but it is the *same* device in both drivers,
    /// which is all determinism needs.
    fn epoch_dt(&self) -> SimDuration {
        SimDuration::from_secs_f64(
            self.cfg.epoch_insts as f64 / (self.cpu.steady.base_freq_ghz * 1e9),
        )
    }

    fn epoch_tick(&self, epoch: usize) -> SimTime {
        SimTime::from_picos(self.epoch_dt().as_picos().saturating_mul(epoch as u64))
    }

    /// Per-slice seed: the `seed → domain → epoch` fork chain.
    fn epoch_seed(&self, domain: usize, epoch: usize) -> u64 {
        SuitRng::seed_from_u64(self.cfg.seed)
            .fork(domain as u64)
            .fork(epoch as u64)
            .next_u64()
    }

    /// The level a domain actually runs at: the shallower of the
    /// requested level and what the rack's governor allows.
    fn realized_level(&self, allowed: Option<UndervoltLevel>) -> Option<UndervoltLevel> {
        allowed.map(|a| match (self.cfg.level, a) {
            (UndervoltLevel::Mv97, UndervoltLevel::Mv97) => UndervoltLevel::Mv97,
            _ => UndervoltLevel::Mv70,
        })
    }

    /// Runs one domain's epoch slice: a pure function of
    /// `(config, domain, epoch, allowed level)`.
    fn run_domain_epoch(
        &self,
        domain: usize,
        epoch: usize,
        allowed: Option<UndervoltLevel>,
        tele: &Telemetry,
    ) -> EpochOut {
        let p = self.profiles[domain % self.profiles.len()];
        match self.realized_level(allowed) {
            Some(level) => {
                let sc = SimConfig {
                    strategy: self.cfg.strategy,
                    params: self.params,
                    level,
                    cores: self.cfg.cores_per_domain,
                    seed: self.epoch_seed(domain, epoch),
                    max_insts: Some(self.cfg.epoch_insts),
                    record_timeline: false,
                    adaptive: None,
                };
                EpochOut {
                    result: simulate_telemetry(&self.cpu, p, &sc, tele),
                    level: Some(level),
                }
            }
            None => EpochOut {
                result: self.stock_epoch(p),
                level: None,
            },
        }
    }

    /// The no-SUIT slice a too-hot rack falls back to: stock operation
    /// at the conservative point, closed-form (no events, no traps).
    fn stock_epoch(&self, p: &WorkloadProfile) -> RunResult {
        let cap = self.cfg.epoch_insts.min(p.total_insts);
        let nominal = p.ipc * self.cpu.steady.base_freq_ghz * 1e9;
        let d = SimDuration::from_secs_f64(cap as f64 / nominal);
        RunResult {
            workload: p.name.to_string(),
            duration: d,
            baseline_duration: d,
            energy_rel: d.as_secs_f64(),
            time_e: SimDuration::ZERO,
            time_cf: SimDuration::ZERO,
            time_cv: d,
            time_stall: SimDuration::ZERO,
            events: 0,
            exceptions: 0,
            timer_fires: 0,
            thrash_hits: 0,
        }
    }

    /// Stock package watts for this CPU's SPEC operating point — the
    /// scale the rack thermal model integrates.
    fn base_watts(&self) -> f64 {
        self.cpu.steady.response(0.0).power_w
    }

    /// The thermal sync point for one rack: aggregate this epoch's
    /// domain slices in domain-index order, integrate package power
    /// over the sync grid, and let the governor re-decide.
    fn rack_sync(&self, outs: &[EpochOut], governor: &mut OffsetGovernor, report: &mut RackReport) {
        let base = self.base_watts();
        let mut watts_sum = 0.0;
        for out in outs {
            report.add(out);
            watts_sum += base * (out.result.energy_rel / out.result.duration.as_secs_f64());
        }
        // Parked (power-gated) domains draw nothing; an all-parked rack
        // integrates zero watts and cools toward ambient.
        let watts = if outs.is_empty() {
            0.0
        } else {
            watts_sum / outs.len() as f64
        };
        governor.step(self.epoch_dt(), watts);
        report.final_temp_c = governor.temperature_c();
    }

    /// Runs the fleet: the production sharded driver.
    pub fn run(&self, threads: Threads) -> FleetResult {
        self.run_sharded(threads, None)
    }

    /// [`FleetSim::run`] with telemetry: every domain-epoch slice
    /// records into its own shard, and shards merge in domain-index
    /// order within each epoch, epochs in order — so the merged
    /// snapshot is byte-identical at every thread count.
    pub fn run_with_telemetry(&self, threads: Threads) -> (FleetResult, TelemetrySnapshot) {
        let mut merged = TelemetrySnapshot::default();
        let result = self.run_sharded(threads, Some(&mut merged));
        (result, merged)
    }

    fn run_sharded(
        &self,
        threads: Threads,
        mut telemetry: Option<&mut TelemetrySnapshot>,
    ) -> FleetResult {
        let dpr = self.cfg.domains_per_rack;
        let active = self.active_domains();
        let mut governors: Vec<OffsetGovernor> =
            (0..self.cfg.racks).map(|r| self.governor(r)).collect();
        let mut reports: Vec<RackReport> = (0..self.cfg.racks)
            .map(|r| {
                let lo = r * dpr;
                let act = (lo + dpr).min(active).saturating_sub(lo);
                RackReport::new(r, self.fan_rpm(r), self.age_years(r), act)
            })
            .collect();

        for epoch in 0..self.cfg.epochs {
            let levels: Vec<Option<UndervoltLevel>> = governors.iter().map(|g| g.level()).collect();
            let outs: Vec<EpochOut> = match telemetry.as_deref_mut() {
                Some(merged) => {
                    let (outs, snap) =
                        suit_exec::run_telemetry(active, threads, TELEMETRY_CAPACITY, |d, tele| {
                            self.run_domain_epoch(d, epoch, levels[d / dpr], tele)
                        });
                    merged.merge_shard(&snap);
                    outs
                }
                None => suit_exec::run(active, threads, |d| {
                    self.run_domain_epoch(d, epoch, levels[d / dpr], &Telemetry::off())
                }),
            };
            for r in 0..self.cfg.racks {
                let lo = (r * dpr).min(active);
                let hi = ((r + 1) * dpr).min(active);
                self.rack_sync(&outs[lo..hi], &mut governors[r], &mut reports[r]);
            }
        }

        FleetResult {
            racks: reports,
            domains: self.domains(),
            active_domains: active,
            cores: active * self.cfg.cores_per_domain,
            epochs: self.cfg.epochs,
        }
    }

    /// Runs the fleet through the [`Component`]/[`EventHeap`] scheduler
    /// of [`crate::event`]: every DVFS domain and every rack thermal
    /// loop is a component on one global clock. Serial by construction
    /// (components share the fleet state), bit-for-bit identical to
    /// [`FleetSim::run`] — the scheduler property suite pins it.
    pub fn run_event_driven(&self) -> FleetResult {
        let dpr = self.cfg.domains_per_rack;
        let active = self.active_domains();
        let racks = self.cfg.racks;

        let mut ctx = FleetCtx {
            sim: self,
            levels: (0..racks).map(|r| self.governor(r).level()).collect(),
            governors: (0..racks).map(|r| self.governor(r)).collect(),
            mailbox: vec![Vec::new(); racks],
            reports: (0..racks)
                .map(|r| {
                    let lo = r * dpr;
                    let act = (lo + dpr).min(active).saturating_sub(lo);
                    RackReport::new(r, self.fan_rpm(r), self.age_years(r), act)
                })
                .collect(),
        };

        // Component ids: rack thermal loops first (ids 0..racks), then
        // domains (ids racks..racks+active). At an epoch boundary every
        // rack's sync point therefore settles — governor stepped, level
        // re-decided — before any domain starts the next epoch: the
        // heap's id tie-break *is* the sync-point barrier.
        let mut comps: Vec<FleetComponent> = (0..racks)
            .map(|rack| FleetComponent::Thermal { rack, epoch: 0 })
            .chain((0..active).map(|domain| FleetComponent::Domain { domain, epoch: 0 }))
            .collect();
        let mut heap = EventHeap::with_capacity(comps.len());
        for (id, c) in comps.iter().enumerate() {
            if let Some(t) = c.next_tick(&ctx) {
                heap.push(t, id as u32);
            }
        }
        while let Some((tick, id)) = heap.pop() {
            let c = &mut comps[id as usize];
            c.on_tick(tick, &mut ctx);
            if let Some(t) = c.next_tick(&ctx) {
                heap.push(t, id);
            }
        }

        FleetResult {
            racks: ctx.reports,
            domains: self.domains(),
            active_domains: active,
            cores: active * self.cfg.cores_per_domain,
            epochs: self.cfg.epochs,
        }
    }
}

/// Shared fleet state the components interact through.
struct FleetCtx<'a> {
    sim: &'a FleetSim,
    /// Per-rack allowed level, re-decided at each rack's sync point.
    levels: Vec<Option<UndervoltLevel>>,
    governors: Vec<OffsetGovernor>,
    /// Per-rack slice results of the epoch in flight, appended in
    /// domain-index order (domains dispatch in id order).
    mailbox: Vec<Vec<EpochOut>>,
    reports: Vec<RackReport>,
}

/// The fleet-level components: a DVFS domain running its epoch slices,
/// and a rack's thermal sync point.
enum FleetComponent {
    /// Rack `rack`'s thermal loop; ticks at the *end* of each epoch.
    Thermal { rack: usize, epoch: usize },
    /// Domain `domain`; ticks at the *start* of each epoch.
    Domain { domain: usize, epoch: usize },
}

impl<'a> Component<FleetCtx<'a>> for FleetComponent {
    fn next_tick(&self, ctx: &FleetCtx<'a>) -> Option<SimTime> {
        let epochs = ctx.sim.cfg.epochs;
        match *self {
            // The sync point for epoch k settles at the start of k+1.
            FleetComponent::Thermal { epoch, .. } => {
                (epoch < epochs).then(|| ctx.sim.epoch_tick(epoch + 1))
            }
            FleetComponent::Domain { epoch, .. } => {
                (epoch < epochs).then(|| ctx.sim.epoch_tick(epoch))
            }
        }
    }

    fn on_tick(&mut self, _now: SimTime, ctx: &mut FleetCtx<'a>) {
        match self {
            FleetComponent::Thermal { rack, epoch } => {
                let r = *rack;
                let outs = std::mem::take(&mut ctx.mailbox[r]);
                let sim = ctx.sim;
                sim.rack_sync(&outs, &mut ctx.governors[r], &mut ctx.reports[r]);
                ctx.levels[r] = ctx.governors[r].level();
                *epoch += 1;
            }
            FleetComponent::Domain { domain, epoch } => {
                let d = *domain;
                let rack = d / ctx.sim.cfg.domains_per_rack;
                let out = ctx
                    .sim
                    .run_domain_epoch(d, *epoch, ctx.levels[rack], &Telemetry::off());
                ctx.mailbox[rack].push(out);
                *epoch += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            racks: 2,
            domains_per_rack: 2,
            cores_per_domain: 2,
            epochs: 2,
            epoch_insts: 5_000_000,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn sharded_run_is_thread_invariant() {
        let sim = FleetSim::new(tiny()).unwrap();
        let a = sim.run(Threads::Fixed(1));
        let b = sim.run(Threads::Fixed(4));
        assert_eq!(a, b);
        assert!(a.events() > 0);
        assert!(a.duration_s() > 0.0);
    }

    #[test]
    fn event_driven_matches_sharded() {
        let sim = FleetSim::new(tiny()).unwrap();
        assert_eq!(sim.run(Threads::Fixed(2)), sim.run_event_driven());
    }

    #[test]
    fn telemetry_is_observational_and_thread_invariant() {
        let sim = FleetSim::new(tiny()).unwrap();
        let plain = sim.run(Threads::Fixed(1));
        let (r1, t1) = sim.run_with_telemetry(Threads::Fixed(1));
        let (r4, t4) = sim.run_with_telemetry(Threads::Fixed(4));
        assert_eq!(plain, r1);
        assert_eq!(r1, r4);
        assert_eq!(t1.to_perfetto_json(), t4.to_perfetto_json());
        assert!(t1.counter(suit_telemetry::Counter::CoreSteps) > 0);
    }

    #[test]
    fn consolidation_parks_domains_and_keeps_determinism() {
        let mut cfg = tiny();
        cfg.utilization = 0.5;
        let sim = FleetSim::new(cfg).unwrap();
        let r = sim.run(Threads::Fixed(2));
        assert_eq!(r.active_domains, 2);
        assert_eq!(r.domains, 4);
        // Rack 1's domains (indices 2, 3) are parked.
        assert_eq!(r.racks[0].slices, 4);
        assert_eq!(r.racks[1].slices, 0);
        assert_eq!(r.racks[1].events, 0);
        assert_eq!(sim.run_event_driven(), r);

        // Regression: utilization low enough that a whole rack sits past
        // the active range used to panic on an out-of-range slice start.
        let mut cfg = tiny();
        cfg.utilization = 0.25;
        let sim = FleetSim::new(cfg).unwrap();
        let r = sim.run(Threads::Fixed(2));
        assert_eq!(r.active_domains, 1);
        assert_eq!(r.racks[1].slices, 0);
        assert_eq!(sim.run_event_driven(), r);
    }

    #[test]
    fn aged_rack_caps_undervolt_level() {
        // A 9.5-year-old rack has no borrowable aging guardband left:
        // its governor caps the requested -97 mV to -70 mV from the
        // first epoch, while the fresh rack runs the full depth.
        let mut cfg = tiny();
        cfg.rack_fan_rpm = vec![1800.0, 1800.0];
        cfg.rack_age_years = vec![0.0, 9.5];
        let sim = FleetSim::new(cfg).unwrap();
        let r = sim.run(Threads::Fixed(2));
        assert_eq!(r.racks[0].deep_slices, r.racks[0].slices);
        assert_eq!(r.racks[1].deep_slices, 0);
        assert_eq!(r.racks[1].enabled_slices, r.racks[1].slices);
        // The shallower offset saves less power.
        assert!(r.racks[0].power() < r.racks[1].power());
    }

    #[test]
    fn hot_rack_falls_back_to_shallower_level() {
        // A starved rack (300 RPM) heats past the Table 3 crossover
        // where -97 mV stops being safe (~42 degC) while the well-cooled
        // rack is still far from its (higher) steady state.
        let mut cfg = tiny();
        cfg.domains_per_rack = 1;
        cfg.cores_per_domain = 1;
        cfg.workloads = vec!["557.xz".into()];
        cfg.epochs = 72;
        cfg.epoch_insts = 2_000_000_000;
        cfg.rack_fan_rpm = vec![1800.0, 300.0];
        let sim = FleetSim::new(cfg).unwrap();
        let r = sim.run(Threads::Fixed(4));
        assert!(r.racks[1].final_temp_c > r.racks[0].final_temp_c);
        assert!(
            r.racks[1].deep_slices < r.racks[1].slices,
            "hot rack never left -97 mV: {:.1} degC after {} slices",
            r.racks[1].final_temp_c,
            r.racks[1].slices
        );
        assert!(r.racks[1].deep_slices < r.racks[0].deep_slices);
    }

    #[test]
    fn config_validation_rejects_hostile_counts() {
        for (mutate, msg) in [
            (
                Box::new(|c: &mut FleetConfig| c.racks = usize::MAX) as Box<dyn Fn(&mut _)>,
                "racks",
            ),
            (Box::new(|c: &mut FleetConfig| c.epochs = 0), "epochs"),
            (
                Box::new(|c: &mut FleetConfig| {
                    c.racks = 4096;
                    c.domains_per_rack = usize::MAX / 4096 + 1;
                }),
                "domains",
            ),
            (
                Box::new(|c: &mut FleetConfig| c.utilization = f64::NAN),
                "utilization",
            ),
            (
                Box::new(|c: &mut FleetConfig| c.workloads = vec!["no-such".into()]),
                "workload",
            ),
        ] {
            let mut cfg = tiny();
            mutate(&mut cfg);
            let err = FleetSim::new(cfg).expect_err(msg);
            assert!(err.contains(msg), "{msg}: {err}");
        }
    }

    #[test]
    fn json_round_trips_and_rejects_unknown_keys() {
        let cfg = FleetConfig::from_json(
            r#"{"racks": 2, "domains_per_rack": 3, "cores_per_domain": 1,
                "epochs": 2, "epoch_insts": 1000000, "seed": 9,
                "utilization": 0.5, "workloads": ["557.xz", "Nginx"],
                "rack_fan_rpm": [1800, 900], "offset": 70, "strategy": "f",
                "cpu": "b"}"#,
        )
        .unwrap();
        assert_eq!(cfg.racks, 2);
        assert_eq!(cfg.level, UndervoltLevel::Mv70);
        assert_eq!(cfg.strategy, OperatingStrategy::Frequency);
        assert_eq!(cfg.workloads, vec!["557.xz", "Nginx"]);

        assert!(FleetConfig::from_json(r#"{"rakcs": 2}"#)
            .unwrap_err()
            .contains("unknown key"));
        assert!(FleetConfig::from_json(r#"{"racks": 1e300}"#).is_err());
        assert!(FleetConfig::from_json("[1,2]").is_err());
        assert!(FleetConfig::from_json("{\"racks\":").is_err());
    }
}
