fn main() {
    use suit_hw::UndervoltLevel;
    use suit_sim::experiment::*;
    for spec in table6_rows() {
        for level in [UndervoltLevel::Mv70, UndervoltLevel::Mv97] {
            let row = run_row(&spec, level, Some(4_000_000_000));
            let g = row.spec_gmean();
            let m = row.spec_median();
            let x = row.x264();
            let ns = row.spec_no_simd();
            let n = row.nginx();
            let v = row.vlc();
            println!("{:8} {:?}: gmean P{:+.1}% p{:+.1}% E{:+.1}% | med E{:+.1}% | x264 E{:+.1}% | noSIMD p{:+.1}% E{:+.1}% | nginx p{:+.1}% E{:+.1}% | vlc p{:+.1}% E{:+.1}% | res {:.2}",
                spec.label, level,
                g.power*100.0, g.perf*100.0, g.eff*100.0, m.eff*100.0, x.eff*100.0,
                ns.perf*100.0, ns.eff*100.0, n.perf*100.0, n.eff*100.0, v.perf*100.0, v.eff*100.0,
                row.spec_residency_mean());
        }
    }
}
