//! Hermetic deterministic randomness for the SUIT workspace.
//!
//! Every statistical result in this repository — the Table 1 fault
//! campaign, the Monte-Carlo error bars, the synthetic trace and µop
//! generators, the process-variation chip models — must be exactly
//! reproducible from a single `u64` seed, with **zero external crates**
//! so the workspace builds offline. This crate provides that substrate:
//!
//! * [`SplitMix64`] — the seed expander (Steele, Lea & Flood 2014). One
//!   `u64` in, a well-mixed stream out; used to fill generator state and
//!   to derive child-stream seeds.
//! * [`SuitRng`] — xoshiro256++ (Blackman & Vigna 2019), the workhorse
//!   generator: 256-bit state, 1.17 ns/word, passes BigCrush.
//! * [`Rng`] — a `rand`-like extension trait (`u64`, [`Rng::gen_range`],
//!   [`Rng::f64`], [`Rng::shuffle`]) implemented for everything with a
//!   [`RngCore::next_u64`].
//! * **Stream splitting** — [`SuitRng::fork`] derives the RNG for a
//!   logical sub-stream (one Monte-Carlo run, one campaign shard) as a
//!   pure function of the *root seed* and the stream id. Forked streams
//!   do not depend on how many values the parent has drawn, which is
//!   what makes the parallel campaign runners bit-identical regardless
//!   of thread count or scheduling.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Golden-ratio increment used by SplitMix64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 seed expander: a tiny, statistically solid generator
/// whose only job here is turning one `u64` into arbitrarily many
/// well-mixed words (generator state, child seeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates an expander over `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next mixed word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// The workspace generator: xoshiro256++ seeded via SplitMix64, carrying
/// its root seed so sub-streams can be [forked](SuitRng::fork) at any
/// point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuitRng {
    s: [u64; 4],
    /// The seed this generator (or fork chain) was rooted at — forking is
    /// a pure function of this value and the stream id, never of how many
    /// values have been drawn.
    root: u64,
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl SuitRng {
    /// Creates a generator from a single `u64` seed (the state is filled
    /// by SplitMix64, as the xoshiro authors prescribe — an all-zero
    /// state is unreachable).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        SuitRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
            root: seed,
        }
    }

    /// The root seed this generator was derived from.
    pub fn root_seed(&self) -> u64 {
        self.root
    }

    /// Derives the generator for logical sub-stream `stream_id`.
    ///
    /// The child depends only on `(root seed, stream_id)` — *not* on the
    /// parent's draw position — so `rng.fork(i)` is stable no matter when
    /// or on which thread it is called. Distinct stream ids give
    /// decorrelated streams; the same id always gives the same stream.
    pub fn fork(&self, stream_id: u64) -> SuitRng {
        // Two SplitMix64 rounds over (root, stream): the first decouples
        // the child space from the raw seed, the second folds the stream
        // id in through an odd-multiplier hash.
        let mut sm = SplitMix64::new(self.root);
        let base = sm.next_u64();
        let mut sm2 = SplitMix64::new(base ^ stream_id.wrapping_mul(0xA076_1D64_78BD_642F));
        SuitRng::seed_from_u64(sm2.next_u64())
    }
}

impl RngCore for SuitRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }
}

/// The raw word source every generator implements.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types [`Rng::gen_range`] accepts. Implemented for half-open and
/// inclusive ranges of the unsigned integers and half-open `f64` ranges —
/// exactly the shapes the workspace samples.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw in `[0, n)` by rejection (Lemire-style
/// threshold: only the first `2^64 mod n` words are rejected).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let r = rng.next_u64();
        if r >= threshold {
            return r % n;
        }
    }
}

macro_rules! impl_uint_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64_unit(rng) * (self.end - self.start)
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn f64_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The convenience layer: every [`RngCore`] gets the sampling surface the
/// workspace uses, mirroring the parts of `rand::Rng` it replaced.
pub trait Rng: RngCore {
    /// Uniform `u64`.
    fn u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform `u32`.
    fn u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u8`.
    fn u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `u128`.
    fn u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Fair coin flip (high bit).
    fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// Uniform `f64` in `[0, 1)` (53-bit resolution).
    fn f64(&mut self) -> f64 {
        f64_unit(self)
    }

    /// Uniform draw from `range` (half-open or inclusive; unsigned
    /// integers and `f64`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// In-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = uniform_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 (Steele et al. reference sequence).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ with state {1, 2, 3, 4} (Vigna's test vector).
        let mut rng = SuitRng {
            s: [1, 2, 3, 4],
            root: 0,
        };
        let expected: [u64; 6] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SuitRng::seed_from_u64(42);
        let mut b = SuitRng::seed_from_u64(42);
        let mut c = SuitRng::seed_from_u64(43);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn forks_are_position_independent() {
        let fresh = SuitRng::seed_from_u64(7);
        let mut drained = SuitRng::seed_from_u64(7);
        for _ in 0..1000 {
            drained.next_u64();
        }
        // Same (root, stream) → same child, no matter the parent's state.
        assert_eq!(fresh.fork(3), drained.fork(3));
        // A fork's forks are rooted at the *child* seed.
        assert_eq!(fresh.fork(3).fork(5), drained.fork(3).fork(5));
    }

    #[test]
    fn forks_are_decorrelated() {
        let root = SuitRng::seed_from_u64(1);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a, b);
        let overlap = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlap, 0);
        // And forking does not replay the parent's own stream.
        let mut parent = SuitRng::seed_from_u64(1);
        let mut child = SuitRng::seed_from_u64(1).fork(0);
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SuitRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&y));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(f64::EPSILON..1.0);
            assert!(u > 0.0 && u < 1.0);
            let z = rng.gen_range(0usize..7);
            assert!(z < 7);
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = SuitRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = SuitRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SuitRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.bool()).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SuitRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn works_through_dyn_and_generic_indirection() {
        fn generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = SuitRng::seed_from_u64(3);
        let x = generic(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SuitRng::seed_from_u64(1);
        let _ = rng.gen_range(5u64..5);
    }
}
