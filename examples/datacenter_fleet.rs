//! A data-center scenario (§3.1): how much energy does SUIT save across a
//! fleet, and how much aging guardband can be borrowed over a server's
//! real deployment life?
//!
//! ```sh
//! cargo run --release -p suit --example datacenter_fleet
//! ```

use suit::hw::guardband::{aging_guardband_mv, AgingModel};
use suit::hw::{CpuModel, DvfsCurve, UndervoltLevel};
use suit::sim::engine::{simulate_mixed, SimConfig};
use suit::sim::experiment::{run_row, table6_rows};
use suit::trace::profile;

fn main() {
    // --- Borrowable aging guardband over a 5-year deployment ------------
    let aging = AgingModel::default();
    let curve = DvfsCurve::i9_9900k();
    println!(
        "Aging guardband of the modelled CPU: {:.0} mV (§5.6: 137 mV)\n",
        aging_guardband_mv(&curve)
    );
    println!(
        "{:>6} {:>10} {:>16} {:>22}",
        "year", "temp (C)", "unused fraction", "borrowable (80% reserve)"
    );
    for year in [0.0, 1.0, 3.0, 5.0] {
        let unused = aging.unused_fraction(year, 60.0);
        let borrow = aging.borrowable_mv(&curve, year, 60.0, 0.8);
        println!(
            "{year:>6} {:>10} {:>15.1}% {:>21.1} mV",
            60,
            unused * 100.0,
            borrow
        );
    }
    println!(
        "\nAWS-style 5-year deployments at controlled temperatures never consume\n\
         the 10-year worst-case guardband, which funds the extra −27 mV of the\n\
         paper's −97 mV offset.\n"
    );

    // --- Fleet-level energy accounting -----------------------------------
    // A rack of Xeon 4208 servers running the SPEC-like mix with SUIT.
    let spec = &table6_rows()[5]; // C∞ fV
    let row = run_row(spec, UndervoltLevel::Mv97, Some(2_000_000_000));
    let g = row.spec_gmean();

    const SERVERS: f64 = 1_000.0;
    const WATTS_PER_SERVER: f64 = 85.0; // Xeon 4208 TDP
    const HOURS_PER_YEAR: f64 = 8_766.0;
    let baseline_mwh = SERVERS * WATTS_PER_SERVER * HOURS_PER_YEAR / 1e6;
    let saved_mwh = baseline_mwh * (-g.power);

    println!(
        "Fleet of {SERVERS:.0} {} servers:",
        CpuModel::xeon_4208().name
    );
    println!("  package power change:  {:+.1} %", g.power * 100.0);
    println!("  performance change:    {:+.1} %", g.perf * 100.0);
    println!("  efficiency change:     {:+.1} %", g.eff * 100.0);
    println!("  baseline energy:       {baseline_mwh:.0} MWh/year");
    println!("  energy saved by SUIT:  {saved_mwh:.0} MWh/year");

    // Multi-core consolidation caveat (§6.4): on a single shared DVFS
    // domain the gain shrinks with utilised cores.
    println!("\nShared-domain caveat (i9-9900K class, fV at -97 mV):");
    for (label, idx) in [("1 core", 0usize), ("4 cores", 1)] {
        let row = run_row(
            &table6_rows()[idx],
            UndervoltLevel::Mv97,
            Some(1_000_000_000),
        );
        println!(
            "  {:>7}: efficiency {:+.1} % (residency {:.0} %)",
            label,
            row.spec_gmean().eff * 100.0,
            row.spec_residency_mean() * 100.0
        );
    }
    println!("\nPer-core DVFS domains (CPU C) keep the full gain — the paper's hardware\nrecommendation for SUIT.");

    // --- Consolidated workload mixes on one shared domain -----------------
    println!("\nConsolidation mixes on the i9-9900K's shared domain (fV, -97 mV):");
    let cpu = CpuModel::i9_9900k();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(1_000_000_000);
    for name in profile::MIX_NAMES {
        let workloads = profile::mix(name).expect("known mix");
        let m = simulate_mixed(&cpu, &workloads, &cfg);
        println!(
            "  {:<10} residency {:>5.1}%  power {:+.1}%  eff {:+.1}%",
            name,
            m.domain.residency() * 100.0,
            m.domain.power() * 100.0,
            m.domain.efficiency() * 100.0
        );
    }
    println!("\nMixes with a bursty member (webserver's Nginx/omnetpp) drag the shared\ndomain conservative; homogeneous quiet mixes keep most of the gain.");
}
