//! A data-center scenario (§3.1): how much energy does SUIT save across a
//! fleet, and how much aging guardband can be borrowed over a server's
//! real deployment life?
//!
//! ```sh
//! cargo run --release -p suit --example datacenter_fleet
//! ```

use suit::exec::Threads;
use suit::hw::guardband::{aging_guardband_mv, AgingModel};
use suit::hw::{CpuModel, DvfsCurve, UndervoltLevel};
use suit::sim::engine::{simulate_mixed, SimConfig};
use suit::sim::experiment::{run_row, table6_rows};
use suit::sim::fleet::{FleetConfig, FleetSim};
use suit::trace::profile;

fn main() {
    // --- Borrowable aging guardband over a 5-year deployment ------------
    let aging = AgingModel::default();
    let curve = DvfsCurve::i9_9900k();
    println!(
        "Aging guardband of the modelled CPU: {:.0} mV (§5.6: 137 mV)\n",
        aging_guardband_mv(&curve)
    );
    println!(
        "{:>6} {:>10} {:>16} {:>22}",
        "year", "temp (C)", "unused fraction", "borrowable (80% reserve)"
    );
    for year in [0.0, 1.0, 3.0, 5.0] {
        let unused = aging.unused_fraction(year, 60.0);
        let borrow = aging.borrowable_mv(&curve, year, 60.0, 0.8);
        println!(
            "{year:>6} {:>10} {:>15.1}% {:>21.1} mV",
            60,
            unused * 100.0,
            borrow
        );
    }
    println!(
        "\nAWS-style 5-year deployments at controlled temperatures never consume\n\
         the 10-year worst-case guardband, which funds the extra −27 mV of the\n\
         paper's −97 mV offset.\n"
    );

    // --- Fleet-level energy accounting -----------------------------------
    // A room of Xeon 4208 racks under the discrete-event fleet engine:
    // per-rack cooling and age shape each rack's realized Vmin curve,
    // and the thermal governors re-decide the safe offset every epoch.
    let fleet = FleetSim::new(FleetConfig {
        racks: 8,
        domains_per_rack: 8,
        cores_per_domain: 4,
        epochs: 6,
        epoch_insts: 50_000_000,
        rack_age_years: vec![0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        workloads: vec!["502.gcc".into(), "557.xz".into(), "520.omnetpp".into()],
        ..FleetConfig::default()
    })
    .expect("valid fleet scenario");
    let result = fleet.run(Threads::Auto);
    print!("{}", result.render());

    const SERVERS: f64 = 1_000.0;
    const WATTS_PER_SERVER: f64 = 85.0; // Xeon 4208 TDP
    const HOURS_PER_YEAR: f64 = 8_766.0;
    let baseline_mwh = SERVERS * WATTS_PER_SERVER * HOURS_PER_YEAR / 1e6;
    let saved_mwh = baseline_mwh * (-result.power());

    println!(
        "\nScaled to {SERVERS:.0} {} servers:",
        CpuModel::xeon_4208().name
    );
    println!("  baseline energy:       {baseline_mwh:.0} MWh/year");
    println!("  energy saved by SUIT:  {saved_mwh:.0} MWh/year");

    // The consolidation knob: parking domains cools the racks, which
    // deepens the undervolt the governors allow on what remains.
    println!("\nConsolidation (utilization sweep, same fleet):");
    for util in [1.0, 0.75, 0.5, 0.25] {
        let sim = FleetSim::new(FleetConfig {
            utilization: util,
            ..fleet.config().clone()
        })
        .expect("valid");
        let r = sim.run(Threads::Auto);
        let deep: u64 = r.racks.iter().map(|x| x.deep_slices).sum();
        let slices: u64 = r.racks.iter().map(|x| x.slices).sum();
        println!(
            "  util {:>4.0}%: {:>4} active domains, eff {:+.2}%, deep-offset slices {:>3.0}%",
            util * 100.0,
            r.active_domains,
            r.efficiency() * 100.0,
            100.0 * deep as f64 / slices.max(1) as f64
        );
    }

    // The paper's Table 6 gmean for the same machine class, as the
    // per-workload cross-check of the fleet numbers above.
    let spec = &table6_rows()[5]; // C-inf fV
    let row = run_row(spec, UndervoltLevel::Mv97, Some(2_000_000_000));
    let g = row.spec_gmean();
    println!(
        "\nTable 6 cross-check (C fV, SPEC gmean): perf {:+.1}%  power {:+.1}%  eff {:+.1}%",
        g.perf * 100.0,
        g.power * 100.0,
        g.eff * 100.0
    );

    // Multi-core consolidation caveat (§6.4): on a single shared DVFS
    // domain the gain shrinks with utilised cores.
    println!("\nShared-domain caveat (i9-9900K class, fV at -97 mV):");
    for (label, idx) in [("1 core", 0usize), ("4 cores", 1)] {
        let row = run_row(
            &table6_rows()[idx],
            UndervoltLevel::Mv97,
            Some(1_000_000_000),
        );
        println!(
            "  {:>7}: efficiency {:+.1} % (residency {:.0} %)",
            label,
            row.spec_gmean().eff * 100.0,
            row.spec_residency_mean() * 100.0
        );
    }
    println!("\nPer-core DVFS domains (CPU C) keep the full gain — the paper's hardware\nrecommendation for SUIT.");

    // --- Consolidated workload mixes on one shared domain -----------------
    println!("\nConsolidation mixes on the i9-9900K's shared domain (fV, -97 mV):");
    let cpu = CpuModel::i9_9900k();
    let cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(1_000_000_000);
    for name in profile::MIX_NAMES {
        let workloads = profile::mix(name).expect("known mix");
        let m = simulate_mixed(&cpu, &workloads, &cfg);
        println!(
            "  {:<10} residency {:>5.1}%  power {:+.1}%  eff {:+.1}%",
            name,
            m.domain.residency() * 100.0,
            m.domain.power() * 100.0,
            m.domain.efficiency() * 100.0
        );
    }
    println!("\nMixes with a bursty member (webserver's Nginx/omnetpp) drag the shared\ndomain conservative; homogeneous quiet mixes keep most of the gain.");
}
