//! The §6.9 security argument, executed: naive undervolting silently
//! corrupts computation; SUIT at the same offsets never does.
//!
//! ```sh
//! cargo run --release -p suit --example security_audit
//! ```

use suit::faults::vmin::ChipVminModel;
use suit::faults::{audit_naive_undervolt, audit_suit_system, Campaign};
use suit::isa::Opcode;

fn main() {
    // --- Fault characterisation (the Table 1 landscape) ------------------
    let chip = ChipVminModel::sample(4, 12.0, 2024);
    let report = Campaign::standard(chip.clone(), 1).run();
    println!("Fault-injection campaign on a simulated 4-core chip:");
    println!("  instruction ranking by fault count (paper Table 1 order: IMUL first):");
    for (i, op) in report.ranking().iter().enumerate().take(5) {
        println!(
            "   {}. {:<12} {:>4} faulting combinations",
            i + 1,
            op.to_string(),
            report.faults(*op)
        );
    }
    println!(
        "  IMUL starts faulting at only {:.0} mV undervolt on this chip;\n\
         VPADDQ survives to {:.0} mV — the instruction-voltage variation SUIT exploits.\n",
        -report.first_fault_offset_mv(Opcode::Imul),
        chip.margin_mv(0, Opcode::Vpaddq),
    );

    // --- The audit: naive vs. SUIT ---------------------------------------
    println!("Audit: 20 chips x 5 000 crypto/SIMD instructions per offset");
    println!(
        "{:>10} | {:>24} | {:>28}",
        "offset", "naive undervolt", "SUIT (traps + hardened IMUL)"
    );
    for offset in [-70.0, -97.0, -130.0] {
        let mut naive_errors = 0;
        let mut suit_errors = 0;
        let mut traps = 0;
        for seed in 0..20 {
            let chip = ChipVminModel::sample(2, 12.0, seed);
            naive_errors += audit_naive_undervolt(&chip, 0, offset, seed, 5_000).silent_errors;
            let s = audit_suit_system(&chip, 0, offset, seed, 5_000);
            suit_errors += s.silent_errors;
            traps += s.trapped;
        }
        println!(
            "{:>7} mV | {:>15} errors | {:>9} errors, {:>6} #DO",
            offset, naive_errors, suit_errors, traps
        );
        assert_eq!(suit_errors, 0, "SUIT must never fault silently");
    }

    println!(
        "\nReduction (§6.9): SUIT only ever executes instructions on curves the\n\
         vendor qualified for them — the same process that makes today's CPUs\n\
         safe, applied once per curve. Naive undervolting has no such guarantee,\n\
         which is exactly the Plundervolt/V0LTpwn attack surface."
    );
}
