//! The motivating attack, end to end: recover an RSA private key from a
//! single undervolting fault (Plundervolt / Boneh–DeMillo–Lipton), then
//! show that a SUIT system at the same offsets never leaks.
//!
//! ```sh
//! cargo run --release -p suit --example plundervolt
//! ```

use suit::faults::vmin::ChipVminModel;
use suit::faults::{attack, sign_crt, RsaKey, SignerEnv};
use suit::isa::Opcode;

fn main() {
    let key = RsaKey::generate(2024);
    println!("Victim RSA key (toy size): n = {} = p·q (secret)", key.n);

    // --- Sanity: reliable signer ----------------------------------------
    let m = 0x5017_1234u64;
    let s = sign_crt(&key, m, &SignerEnv::Reliable, 1);
    assert!(key.verify(m, s));
    println!("At stock voltage: signature verifies, nothing leaks.\n");

    // --- The attack: naive undervolt below IMUL's margin ----------------
    let chip = ChipVminModel::sample(1, 10.0, 7);
    let imul_margin = chip.margin_mv(0, Opcode::Imul);
    let offset = -(imul_margin + 5.0);
    println!("This chip's IMUL starts faulting {imul_margin:.0} mV below the conservative curve.");
    println!("Attacker undervolts to {offset:.0} mV (naive, no SUIT) and requests signatures...");

    let env = SignerEnv::NaiveUndervolt {
        chip: &chip,
        core: 0,
        offset_mv: offset,
    };
    match attack(&key, &env, 2_000, 99) {
        Some((factor, tries)) => {
            let other = key.n / factor;
            println!(
                "  -> after {tries} signatures, one CRT branch was silently corrupted;\n\
                 \x20    gcd(s'^e - m, n) = {factor}  =>  n = {factor} x {other}\n\
                 \x20    FULL PRIVATE KEY RECOVERED from one faulty multiply.\n"
            );
            assert!(factor == u64::from(key.p) || factor == u64::from(key.q));
        }
        None => println!("  -> no fault observed in this run (rare) — deepen the offset.\n"),
    }

    // --- The defence ------------------------------------------------------
    println!(
        "With SUIT at -97 mV: IMUL is hardened (4-cycle pipeline, ~220 mV extra slack),\n\
         AES/SIMD faultables trap with #DO before executing, and the signer's multiplies\n\
         are exact. The same attack dries up:"
    );
    let safe = SignerEnv::Reliable; // hardened IMUL at -97 mV ≡ exact multiply
    match attack(&key, &safe, 2_000, 99) {
        Some(_) => unreachable!("SUIT must not leak"),
        None => println!("  -> 2 000 signatures, zero faulty, zero leakage."),
    }
    println!(
        "\nThat asymmetry — identical offsets, catastrophic vs. harmless — is the paper's\n\
         security argument (§6.9) made concrete."
    );
}
