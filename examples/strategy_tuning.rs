//! Operating-strategy tuning: sweep the §4.3 parameters on a thrash-prone
//! workload and watch the deadline and thrashing-prevention knobs work.
//!
//! ```sh
//! cargo run --release -p suit --example strategy_tuning
//! ```

use suit::core::strategy::StrategyParams;
use suit::hw::{CpuModel, UndervoltLevel};
use suit::isa::SimDuration;
use suit::sim::engine::{simulate, SimConfig};
use suit::trace::profile;

fn main() {
    let cpu = CpuModel::xeon_4208();
    // 520.omnetpp: bursts arrive just over the deadline apart — the
    // pattern that would thrash without prevention (§4.3).
    let workload = profile::by_name("520.omnetpp").expect("profile");
    let cap = 1_000_000_000;

    println!("Deadline sweep on 520.omnetpp ({}):\n", cpu.name);
    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>10}",
        "p_dl (us)", "perf", "eff", "#DO", "residency"
    );
    for dl in [5u64, 15, 30, 60, 120, 300] {
        let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(cap);
        cfg.params = StrategyParams::intel().with_deadline(SimDuration::from_micros(dl));
        let r = simulate(&cpu, workload, &cfg);
        println!(
            "{:>10} {:>7.2}% {:>7.2}% {:>10} {:>9.1}%",
            dl,
            r.perf() * 100.0,
            r.efficiency() * 100.0,
            r.exceptions,
            r.residency() * 100.0
        );
    }

    println!("\nThrashing prevention on/off at the Table 7 optimum (p_dl = 30 µs):\n");
    println!(
        "{:>16} {:>8} {:>8} {:>10} {:>12}",
        "guard", "perf", "eff", "#DO", "thrash hits"
    );
    for (label, params) in [
        ("enabled", StrategyParams::intel()),
        (
            "disabled",
            StrategyParams::intel().without_thrash_prevention(),
        ),
    ] {
        let mut cfg = SimConfig::fv_intel(UndervoltLevel::Mv97).with_max_insts(cap);
        cfg.params = params;
        let r = simulate(&cpu, workload, &cfg);
        println!(
            "{:>16} {:>7.2}% {:>7.2}% {:>10} {:>12}",
            label,
            r.perf() * 100.0,
            r.efficiency() * 100.0,
            r.exceptions,
            r.thrash_hits
        );
    }

    println!(
        "\nWith the guard, {} detects the borderline cadence and multiplies the\n\
         deadline by p_df = 14, parking the CPU on the conservative curve: far\n\
         fewer exceptions, negligible performance impact (the paper's −0.13 %).",
        workload.name
    );
}
