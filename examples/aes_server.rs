//! An HTTPS-server scenario: why burst-heavy crypto workloads want DVFS
//! curve switching rather than instruction emulation (§6.6).
//!
//! The example simulates the paper's Nginx workload (100 kB files over
//! HTTPS: ~62 500 `AESENC` rounds per request, arriving in dense bursts)
//! under both options, and also demonstrates the actual emulation code
//! path — the bit-sliced AES computing a real `AESENC` result.
//!
//! ```sh
//! cargo run --release -p suit --example aes_server
//! ```

use suit::emu::aes::{bitsliced, reference, Aes128Key};
use suit::emu::{emulate, EmuOperands};
use suit::hw::{CpuModel, UndervoltLevel};
use suit::isa::{Opcode, Vec128};
use suit::sim::analytic::simulate_emulation;
use suit::sim::engine::{simulate, SimConfig};
use suit::trace::profile;

fn main() {
    let cpu = CpuModel::i9_9900k();
    let nginx = profile::by_name("Nginx").expect("profile");
    let level = UndervoltLevel::Mv97;

    // --- Option 1: fV curve switching -----------------------------------
    let cfg = SimConfig::fv_intel(level).with_max_insts(2_000_000_000);
    let fv = simulate(&cpu, nginx, &cfg);

    // --- Option 2: emulate every trapped instruction --------------------
    let emu = simulate_emulation(&cpu, nginx, level, 0x5017, Some(2_000_000_000));

    println!("Nginx on {} at {level}:\n", cpu.name);
    println!("  strategy      perf      power     efficiency");
    println!(
        "  fV switch   {:>6.1}%   {:>6.1}%   {:>6.1}%",
        fv.perf() * 100.0,
        fv.power() * 100.0,
        fv.efficiency() * 100.0
    );
    println!(
        "  emulation   {:>6.1}%   {:>6.1}%   {:>6.1}%",
        emu.perf() * 100.0,
        emu.power() * 100.0,
        emu.efficiency() * 100.0
    );
    println!(
        "\n  {} AES instructions would each pay the {:.2} µs emulation round\n\
         trip — the short bursts of many encryptions are \"good for DVFS curve\n\
         switching but impose prohibitive costs for emulation\" (§6.6).\n",
        emu.events, cpu.delays.emulation_call_us
    );

    // --- What the emulation handler actually computes -------------------
    let key = Aes128Key::expand(*b"suit-example-key");
    let state = Vec128::from_bytes(*b"plaintext block!");
    let rk = key.round_key(1);

    let trapped =
        emulate(Opcode::Aesenc, EmuOperands::new(state, rk)).expect("AESENC is emulatable");
    assert_eq!(trapped.value, reference::aesenc(state, rk));
    assert_eq!(trapped.value, bitsliced::aesenc(state, rk));
    println!(
        "  #DO handler check: bit-sliced AESENC({}, rk1) = {}",
        state, trapped.value
    );
    println!("  (matches the table-based reference — and leaks no lookup addresses)");
}
