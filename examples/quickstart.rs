//! Quickstart: simulate one SPEC workload on a SUIT CPU and print the
//! power / performance / efficiency outcome.
//!
//! ```sh
//! cargo run --release -p suit --example quickstart
//! ```

use suit::hw::{CpuModel, UndervoltLevel};
use suit::sim::engine::{simulate, SimConfig};
use suit::trace::profile;

fn main() {
    // CPU 𝒞 of the paper: Intel Xeon Silver 4208 with per-core p-states —
    // the best fit for SUIT (fast per-core switching).
    let cpu = CpuModel::xeon_4208();

    println!(
        "SUIT quickstart — {} with the fV operating strategy\n",
        cpu.name
    );
    println!(
        "{:<16} {:>7} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "workload", "offset", "perf", "power", "eff", "residency", "#DO"
    );

    for name in ["557.xz", "502.gcc", "520.omnetpp", "Nginx"] {
        let workload = profile::by_name(name).expect("known workload");
        for level in UndervoltLevel::ALL {
            let cfg = SimConfig::fv_intel(level).with_max_insts(2_000_000_000);
            let r = simulate(&cpu, workload, &cfg);
            println!(
                "{:<16} {:>7} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}% {:>8}",
                name,
                format!("{level}"),
                r.perf() * 100.0,
                r.power() * 100.0,
                r.efficiency() * 100.0,
                r.residency() * 100.0,
                r.exceptions,
            );
        }
    }

    println!(
        "\nReading the table: quiet workloads (557.xz) live on the efficient curve and\n\
         convert almost the whole undervolt into efficiency; bursty ones (520.omnetpp)\n\
         park on the conservative curve via thrashing prevention and lose nothing;\n\
         Nginx's AES bursts bounce between the curves and keep a smaller share."
    );
}
